#include "qwm/device/grid_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace qwm::device {

namespace {
constexpr const char* kMagic = "qwm-grid-v1";
}

void save_grid(const CharacterizationGrid& grid, std::ostream& os) {
  os << kMagic << "\n";
  os << std::setprecision(17);
  os << grid.vs_axis.x0 << " " << grid.vs_axis.dx << " " << grid.vs_axis.n
     << "\n";
  os << grid.vg_axis.x0 << " " << grid.vg_axis.dx << " " << grid.vg_axis.n
     << "\n";
  os << grid.w_ref << " " << grid.l_ref << "\n";
  for (const CharacterizedPoint& p : grid.points) {
    os << p.s1 << " " << p.s0 << " " << p.t2 << " " << p.t1 << " " << p.t0
       << " " << p.vth << " " << p.vdsat << " " << p.triode_fit.rms_error
       << " " << p.triode_fit.r_squared << " " << p.sat_fit.rms_error << " "
       << p.sat_fit.r_squared << "\n";
  }
}

bool save_grid_file(const CharacterizationGrid& grid,
                    const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  save_grid(grid, os);
  return static_cast<bool>(os);
}

std::optional<CharacterizationGrid> load_grid(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != kMagic) return std::nullopt;
  CharacterizationGrid grid;
  if (!(is >> grid.vs_axis.x0 >> grid.vs_axis.dx >> grid.vs_axis.n))
    return std::nullopt;
  if (!(is >> grid.vg_axis.x0 >> grid.vg_axis.dx >> grid.vg_axis.n))
    return std::nullopt;
  if (!(is >> grid.w_ref >> grid.l_ref)) return std::nullopt;
  if (grid.vs_axis.n == 0 || grid.vg_axis.n == 0 ||
      grid.vs_axis.n > 100000 || grid.vg_axis.n > 100000)
    return std::nullopt;
  const std::size_t count = grid.vs_axis.n * grid.vg_axis.n;
  grid.points.resize(count);
  for (CharacterizedPoint& p : grid.points) {
    if (!(is >> p.s1 >> p.s0 >> p.t2 >> p.t1 >> p.t0 >> p.vth >> p.vdsat >>
          p.triode_fit.rms_error >> p.triode_fit.r_squared >>
          p.sat_fit.rms_error >> p.sat_fit.r_squared))
      return std::nullopt;
  }
  return grid;
}

std::optional<CharacterizationGrid> load_grid_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_grid(is);
}

}  // namespace qwm::device
