#include "qwm/device/mosfet_physics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qwm::device {

MosfetPhysics::MosfetPhysics(MosType type, const MosfetParams& params,
                             double temp_vt)
    : type_(type), params_(params), temp_vt_(temp_vt) {}

double MosfetPhysics::l_eff(double l) const {
  return std::max(l - 2.0 * params_.l_overlap, 0.1 * l);
}

double MosfetPhysics::threshold(double vsb) const {
  const double vsb_c = std::max(vsb, -0.5 * params_.phi);
  return params_.vth0 +
         params_.gamma * (std::sqrt(params_.phi + vsb_c) - std::sqrt(params_.phi));
}

double MosfetPhysics::vdsat(double vgt, double l) const {
  if (vgt <= 0.0) return 0.0;
  const double esatl = params_.esat * l_eff(l);
  return vgt * esatl / (vgt + esatl);
}

MosfetPhysics::CoreEval MosfetPhysics::core(double w, double l, double vgs,
                                            double vds, double vsb) const {
  assert(vds >= 0.0);
  CoreEval out{0.0, 0.0, 0.0, 0.0};
  const double leff = l_eff(l);
  const double beta = params_.kp * w / leff;

  // Body effect (clamped forward bias keeps the sqrt real).
  const double vsb_c = std::max(vsb, -0.5 * params_.phi);
  const double root = std::sqrt(params_.phi + vsb_c);
  const double vth = params_.vth0 + params_.gamma * (root - std::sqrt(params_.phi));
  const double dvth_dvsb = (vsb > -0.5 * params_.phi)
                               ? params_.gamma / (2.0 * root)
                               : 0.0;

  // Softplus-smoothed overdrive: vgte -> vgt for vgt >> ss, exponential
  // tail below threshold. Keeps I and dI continuous at the boundary.
  const double ss = params_.n_sub * temp_vt_;
  const double vgt = vgs - vth;
  const double t = vgt / ss;
  double vgte, sig;
  if (t > 40.0) {
    vgte = vgt;
    sig = 1.0;
  } else if (t < -40.0) {
    vgte = ss * std::exp(t);
    sig = std::exp(t);
  } else {
    vgte = ss * std::log1p(std::exp(t));
    sig = 1.0 / (1.0 + std::exp(-t));
  }

  // Velocity-saturated Vdsat.
  const double esatl = params_.esat * leff;
  const double vdsat_v = vgte * esatl / (vgte + esatl);
  const double dvdsat_dvgte =
      (esatl / (vgte + esatl)) * (esatl / (vgte + esatl));

  const double clm = 1.0 + params_.lambda * vds;
  double i, di_dvds, di_dvgte;
  if (vds < vdsat_v) {
    // Triode.
    i = beta * (vgte - 0.5 * vds) * vds * clm;
    di_dvds = beta * ((vgte - vds) * clm +
                      (vgte - 0.5 * vds) * vds * params_.lambda);
    di_dvgte = beta * vds * clm;
  } else {
    // Saturation (velocity-limited).
    i = beta * (vgte - 0.5 * vdsat_v) * vdsat_v * clm;
    di_dvds = beta * (vgte - 0.5 * vdsat_v) * vdsat_v * params_.lambda;
    di_dvgte = beta * clm *
               (vdsat_v + (vgte - vdsat_v) * dvdsat_dvgte);
  }

  out.i = i;
  out.d_vgs = di_dvgte * sig;
  out.d_vds = di_dvds;
  out.d_vsb = -di_dvgte * sig * dvth_dvsb;
  return out;
}

MosfetEval MosfetPhysics::eval(double w, double l, double vg, double va,
                               double vb, double vbulk) const {
  // Normalize PMOS to the NMOS frame by negating every voltage; the
  // current and each derivative map back with no sign change because both
  // the current and the voltages flip.
  double svg = vg, sva = va, svb = vb, svbk = vbulk;
  if (type_ == MosType::pmos) {
    svg = -vg;
    sva = -va;
    svb = -vb;
    svbk = -vbulk;
  }

  MosfetEval out;
  if (sva >= svb) {
    // a is the drain, b the source.
    const CoreEval c = core(w, l, svg - svb, sva - svb, svb - svbk);
    out.ids = c.i;
    out.d_vg = c.d_vgs;
    out.d_va = c.d_vds;
    out.d_vb = -c.d_vgs - c.d_vds + c.d_vsb;
  } else {
    // b is the drain, a the source; current a->b is the negative channel
    // current.
    const CoreEval c = core(w, l, svg - sva, svb - sva, sva - svbk);
    out.ids = -c.i;
    out.d_vg = -c.d_vgs;
    out.d_vb = -c.d_vds;
    out.d_va = c.d_vgs + c.d_vds - c.d_vsb;
  }
  if (type_ == MosType::pmos) {
    // I_p(v) = -I_core(-v): the value flips sign; each derivative picks up
    // two sign flips (outer minus, inner dv'/dv = -1) and carries over
    // unchanged.
    out.ids = -out.ids;
  }
  return out;
}

double MosfetPhysics::ids(double w, double l, double vg, double va, double vb,
                          double vbulk) const {
  return eval(w, l, vg, va, vb, vbulk).ids;
}

}  // namespace qwm::device
