// Process (technology) parameters.
//
// The paper characterizes devices for the CMOSP35 0.35 um / 3.3 V process
// against BSIM3 V3.1. We stand in for BSIM3 with an analytical golden model
// (mosfet_physics.h) parameterized by these constants; the default values
// below are representative of a 0.35 um generation.
//
// Units are SI throughout: volts, amperes, seconds, farads, meters.
#pragma once

#include <string>

namespace qwm::device {

/// Per-polarity MOSFET model card.
struct MosfetParams {
  double vth0 = 0.55;     ///< zero-bias threshold voltage magnitude [V]
  double kp = 190e-6;     ///< transconductance u*Cox [A/V^2]
  double gamma = 0.58;    ///< body-effect coefficient [sqrt(V)]
  double phi = 0.84;      ///< surface potential 2*phi_F [V]
  double lambda = 0.06;   ///< channel-length modulation [1/V]
  double esat = 4.0e6;    ///< velocity-saturation critical field [V/m]
  double n_sub = 1.5;     ///< subthreshold slope factor
  double cox = 4.6e-3;    ///< gate-oxide capacitance per area [F/m^2]
  double cgso = 2.1e-10;  ///< gate-source overlap cap per width [F/m]
  double cgdo = 2.1e-10;  ///< gate-drain overlap cap per width [F/m]
  double cj = 9.0e-4;     ///< junction area cap at zero bias [F/m^2]
  double cjsw = 2.8e-10;  ///< junction sidewall cap at zero bias [F/m]
  double pb = 0.9;        ///< junction built-in potential [V]
  double mj = 0.36;       ///< junction grading coefficient
  double l_diff = 0.85e-6;  ///< source/drain diffusion extent [m]
  double l_overlap = 0.0;   ///< channel-length reduction (Leff = L - 2*lo) [m]
};

/// Wire parasitics for a mid-level metal layer.
struct WireParams {
  double r_sheet = 0.075;      ///< sheet resistance [ohm/sq]
  double c_area = 3.0e-5;      ///< area capacitance to substrate [F/m^2]
  double c_fringe = 8.0e-11;   ///< fringe capacitance per edge length [F/m]
};

/// Process corner selector for derived technology variants.
enum class Corner {
  typical,
  fast,  ///< strong devices: higher mobility, lower threshold
  slow,  ///< weak devices: lower mobility, higher threshold
};
inline constexpr int kCornerCount = 3;
/// Every corner in canonical order (typical first — the primary lane of a
/// multi-corner analysis).
inline constexpr Corner kAllCorners[kCornerCount] = {
    Corner::typical, Corner::fast, Corner::slow};

/// Lower-case wire/CLI name of a corner ("typical", "fast", "slow").
const char* corner_name(Corner corner);
/// Parses a corner name (case-sensitive, lower-case; "typ"/"ff"/"ss"
/// aliases accepted). Returns false on an unknown name.
bool parse_corner(const std::string& name, Corner* out);

/// The full technology description shared by every engine in the repo.
struct Process {
  double vdd = 3.3;        ///< supply voltage [V]
  double temp_vt = 0.02585;  ///< thermal voltage kT/q at ~300 K [V]
  double l_min = 0.35e-6;  ///< minimum drawn channel length [m]
  double w_min = 1.0e-6;   ///< minimum drawn width used for "min-size" gates [m]
  MosfetParams nmos;
  MosfetParams pmos;
  WireParams wire;

  /// Default CMOSP35-class technology (the paper's target process family).
  static Process cmosp35();

  /// Derived corner: +-12% transconductance and -+8% threshold on both
  /// polarities (textbook 3-sigma-ish spread).
  Process at_corner(Corner corner) const;

  /// Derived temperature variant [K]: mobility scales as (T/300)^-1.5 and
  /// thresholds drop ~1 mV/K; the thermal voltage tracks kT/q.
  Process at_temperature(double kelvin) const;
};

}  // namespace qwm::device
