#include "qwm/device/process.h"

#include <algorithm>
#include <cmath>

namespace qwm::device {

const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::typical: return "typical";
    case Corner::fast: return "fast";
    case Corner::slow: return "slow";
  }
  return "?";
}

bool parse_corner(const std::string& name, Corner* out) {
  if (name == "typical" || name == "typ" || name == "tt") {
    *out = Corner::typical;
    return true;
  }
  if (name == "fast" || name == "ff") {
    *out = Corner::fast;
    return true;
  }
  if (name == "slow" || name == "ss") {
    *out = Corner::slow;
    return true;
  }
  return false;
}

Process Process::cmosp35() {
  Process p;
  p.vdd = 3.3;
  p.l_min = 0.35e-6;
  p.w_min = 1.0e-6;

  p.nmos.vth0 = 0.55;
  p.nmos.kp = 190e-6;
  p.nmos.gamma = 0.58;
  p.nmos.phi = 0.84;
  p.nmos.lambda = 0.06;
  p.nmos.esat = 4.0e6;

  p.pmos.vth0 = 0.75;
  p.pmos.kp = 55e-6;
  p.pmos.gamma = 0.42;
  p.pmos.phi = 0.80;
  p.pmos.lambda = 0.10;
  // Holes velocity-saturate at much higher fields.
  p.pmos.esat = 1.5e7;
  p.pmos.cj = 11.0e-4;
  p.pmos.cjsw = 3.1e-10;

  return p;
}

Process Process::at_corner(Corner corner) const {
  Process p = *this;
  if (corner == Corner::typical) return p;
  const double kp_scale = corner == Corner::fast ? 1.12 : 0.88;
  const double vth_scale = corner == Corner::fast ? 0.92 : 1.08;
  for (MosfetParams* m : {&p.nmos, &p.pmos}) {
    m->kp *= kp_scale;
    m->vth0 *= vth_scale;
  }
  return p;
}

Process Process::at_temperature(double kelvin) const {
  Process p = *this;
  const double t_ratio = kelvin / 300.0;
  p.temp_vt = 0.02585 * t_ratio;
  const double mobility = std::pow(t_ratio, -1.5);
  const double dvth = -1.0e-3 * (kelvin - 300.0);
  for (MosfetParams* m : {&p.nmos, &p.pmos}) {
    m->kp *= mobility;
    m->vth0 = std::max(m->vth0 + dvth, 0.05);
  }
  return p;
}

}  // namespace qwm::device
