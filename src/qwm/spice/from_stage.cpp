#include "qwm/spice/from_stage.h"

#include <cassert>
#include <string>

#include "qwm/circuit/path.h"

namespace qwm::spice {

StageSim circuit_from_stage(
    const circuit::LogicStage& stage, const device::ModelSet& models,
    const std::vector<numeric::PwlWaveform>& input_waveforms,
    int wire_segments) {
  assert(input_waveforms.size() == stage.input_count());
  assert(wire_segments >= 1);
  StageSim sim;
  Circuit& c = sim.circuit;

  // Nodes: GND -> ground, VDD -> driven constant, the rest plain.
  sim.node_of.assign(stage.node_count(), -1);
  for (std::size_t i = 0; i < stage.node_count(); ++i) {
    const auto n = static_cast<circuit::NodeId>(i);
    if (n == stage.sink()) {
      sim.node_of[i] = kGround;
    } else if (n == stage.source()) {
      const SimNodeId v = c.add_node("VDD");
      c.drive(v, numeric::PwlWaveform::constant(stage.vdd()));
      sim.node_of[i] = v;
    } else {
      sim.node_of[i] = c.add_node(stage.node(n).name);
      if (stage.node(n).load_cap > 0.0)
        c.add_capacitor(sim.node_of[i], kGround, stage.node(n).load_cap);
    }
  }

  // Driven gate nodes, one per stage input.
  sim.input_node_of.assign(stage.input_count(), -1);
  for (std::size_t i = 0; i < stage.input_count(); ++i) {
    const SimNodeId g = c.add_node("in:" + stage.input_name(
                                              static_cast<circuit::InputId>(i)));
    c.drive(g, input_waveforms[i]);
    sim.input_node_of[i] = g;
  }

  for (std::size_t ei = 0; ei < stage.edge_count(); ++ei) {
    const circuit::Edge& e = stage.edge(static_cast<circuit::EdgeId>(ei));
    const SimNodeId a = sim.node_of[e.src];
    const SimNodeId b = sim.node_of[e.snk];
    if (e.kind == circuit::DeviceKind::wire) {
      const double r = e.explicit_r >= 0.0
                           ? e.explicit_r
                           : circuit::wire_resistance(models.process->wire,
                                                      e.w, e.l);
      const double cw = e.explicit_c >= 0.0
                            ? e.explicit_c
                            : circuit::wire_capacitance(models.process->wire,
                                                        e.w, e.l);
      // RC ladder: segments of R with capacitance shared across the
      // internal and end nodes (standard segmented-pi discretization).
      const int segs = wire_segments;
      SimNodeId prev = a;
      const double rseg = r / segs;
      const double cnode = cw / segs;
      if (cw > 0.0) c.add_capacitor(a, kGround, 0.5 * cnode);
      for (int k = 0; k < segs; ++k) {
        const SimNodeId next =
            (k == segs - 1)
                ? b
                : c.add_node("w" + std::to_string(ei) + "." + std::to_string(k));
        if (rseg > 0.0)
          c.add_resistor(prev, next, rseg);
        else
          c.add_resistor(prev, next, 1e-3);  // ideal wires get 1 mOhm
        if (cw > 0.0)
          c.add_capacitor(next, kGround, (k == segs - 1) ? 0.5 * cnode : cnode);
        prev = next;
      }
      continue;
    }
    // Transistor: gate node is the bound input or a static driven node.
    const device::DeviceModel& model =
        models.model_for(circuit::mos_type_of(e.kind));
    SimNodeId g;
    if (e.input >= 0) {
      g = sim.input_node_of[e.input];
    } else {
      g = c.add_node("sg" + std::to_string(ei));
      c.drive(g, numeric::PwlWaveform::constant(e.static_gate_voltage));
    }
    c.add_mosfet(&model, e.w, e.l, /*d=*/a, g, /*s=*/b);
    // Parasitic junction/overlap caps at the channel terminals.
    if (a != kGround) c.add_capacitor(a, kGround, model.src_cap(e.w, e.l));
    if (b != kGround) c.add_capacitor(b, kGround, model.snk_cap(e.w, e.l));
  }
  return sim;
}

FlatSim circuit_from_flat(const netlist::FlatNetlist& nl,
                          const device::ModelSet& models,
                          std::vector<std::string>* errors) {
  FlatSim sim;
  Circuit& c = sim.circuit;
  sim.node_of.assign(nl.net_count(), -1);
  sim.node_of[netlist::kGroundNet] = kGround;
  for (std::size_t i = 1; i < nl.net_count(); ++i)
    sim.node_of[i] = c.add_node(nl.net_name(static_cast<netlist::NetId>(i)));

  for (const auto& v : nl.vsources) {
    if (v.neg != netlist::kGroundNet) {
      if (errors)
        errors->push_back("vsource " + v.name +
                          " is not ground-referenced; unsupported");
      continue;
    }
    c.drive(sim.node_of[v.pos], v.waveform);
  }
  for (const auto& src : nl.isources)
    c.add_current_source(sim.node_of[src.pos], sim.node_of[src.neg],
                         src.waveform);
  for (const auto& r : nl.resistors)
    c.add_resistor(sim.node_of[r.a], sim.node_of[r.b], r.value);
  for (const auto& cp : nl.capacitors)
    c.add_capacitor(sim.node_of[cp.a], sim.node_of[cp.b], cp.value);
  for (const auto& m : nl.mosfets) {
    const device::DeviceModel& model = models.model_for(m.type);
    c.add_mosfet(&model, m.w, m.l, sim.node_of[m.drain], sim.node_of[m.gate],
                 sim.node_of[m.source]);
    if (sim.node_of[m.drain] != kGround)
      c.add_capacitor(sim.node_of[m.drain], kGround, model.src_cap(m.w, m.l));
    if (sim.node_of[m.source] != kGround)
      c.add_capacitor(sim.node_of[m.source], kGround, model.snk_cap(m.w, m.l));
    // The gate load matters when the gate net is driven by another stage.
    if (sim.node_of[m.gate] != kGround)
      c.add_capacitor(sim.node_of[m.gate], kGround, model.input_cap(m.w, m.l));
  }
  return sim;
}

}  // namespace qwm::spice
