#include "qwm/spice/from_stage.h"

#include <cassert>
#include <string>

#include "qwm/circuit/path.h"

namespace qwm::spice {

StageSim circuit_from_stage(
    const circuit::LogicStage& stage, const device::ModelSet& models,
    const std::vector<numeric::PwlWaveform>& input_waveforms,
    int wire_segments) {
  assert(input_waveforms.size() == stage.input_count());
  assert(wire_segments >= 1);
  StageSim sim;
  Circuit& c = sim.circuit;

  // Nodes: GND -> ground, VDD -> driven constant, the rest plain.
  sim.node_of.assign(stage.node_count(), -1);
  for (std::size_t i = 0; i < stage.node_count(); ++i) {
    const auto n = static_cast<circuit::NodeId>(i);
    if (n == stage.sink()) {
      sim.node_of[i] = kGround;
    } else if (n == stage.source()) {
      const SimNodeId v = c.add_node("VDD");
      c.drive(v, numeric::PwlWaveform::constant(stage.vdd()));
      sim.node_of[i] = v;
    } else {
      sim.node_of[i] = c.add_node(stage.node(n).name);
      if (stage.node(n).load_cap > 0.0)
        c.add_capacitor(sim.node_of[i], kGround, stage.node(n).load_cap);
    }
  }

  // Driven gate nodes, one per stage input.
  sim.input_node_of.assign(stage.input_count(), -1);
  for (std::size_t i = 0; i < stage.input_count(); ++i) {
    const SimNodeId g = c.add_node("in:" + stage.input_name(
                                              static_cast<circuit::InputId>(i)));
    c.drive(g, input_waveforms[i]);
    sim.input_node_of[i] = g;
  }

  for (std::size_t ei = 0; ei < stage.edge_count(); ++ei) {
    const circuit::Edge& e = stage.edge(static_cast<circuit::EdgeId>(ei));
    const SimNodeId a = sim.node_of[e.src];
    const SimNodeId b = sim.node_of[e.snk];
    if (e.kind == circuit::DeviceKind::wire) {
      const double r = e.explicit_r >= 0.0
                           ? e.explicit_r
                           : circuit::wire_resistance(models.process->wire,
                                                      e.w, e.l);
      const double cw = e.explicit_c >= 0.0
                            ? e.explicit_c
                            : circuit::wire_capacitance(models.process->wire,
                                                        e.w, e.l);
      // RC ladder: segments of R with capacitance shared across the
      // internal and end nodes (standard segmented-pi discretization).
      const int segs = wire_segments;
      SimNodeId prev = a;
      const double rseg = r / segs;
      const double cnode = cw / segs;
      if (cw > 0.0) c.add_capacitor(a, kGround, 0.5 * cnode);
      for (int k = 0; k < segs; ++k) {
        const SimNodeId next =
            (k == segs - 1)
                ? b
                : c.add_node("w" + std::to_string(ei) + "." + std::to_string(k));
        if (rseg > 0.0)
          c.add_resistor(prev, next, rseg);
        else
          c.add_resistor(prev, next, 1e-3);  // ideal wires get 1 mOhm
        if (cw > 0.0)
          c.add_capacitor(next, kGround, (k == segs - 1) ? 0.5 * cnode : cnode);
        prev = next;
      }
      continue;
    }
    // Transistor: gate node is the bound input or a static driven node.
    const device::DeviceModel& model =
        models.model_for(circuit::mos_type_of(e.kind));
    SimNodeId g;
    if (e.input >= 0) {
      g = sim.input_node_of[e.input];
    } else {
      g = c.add_node("sg" + std::to_string(ei));
      c.drive(g, numeric::PwlWaveform::constant(e.static_gate_voltage));
    }
    c.add_mosfet(&model, e.w, e.l, /*d=*/a, g, /*s=*/b);
    // Parasitic junction/overlap caps at the channel terminals.
    if (a != kGround) c.add_capacitor(a, kGround, model.src_cap(e.w, e.l));
    if (b != kGround) c.add_capacitor(b, kGround, model.snk_cap(e.w, e.l));
  }
  return sim;
}

PathSim circuit_from_path(const circuit::PathProblem& problem,
                          const std::vector<numeric::PwlWaveform>& inputs,
                          const std::vector<double>& initial_voltages) {
  using Element = circuit::PathProblem::Element;
  PathSim sim;
  Circuit& c = sim.circuit;
  const std::size_t m = problem.length();
  const double v_rail = problem.discharge ? 0.0 : problem.vdd;
  const double v_far = problem.discharge ? problem.vdd : 0.0;

  // Path positions. The rail is driven at its supply level; every other
  // position carries its lumped cap (which already contains all device
  // parasitics, side loads, and wire caps — nothing is re-added here).
  sim.nodes.assign(m + 1, kGround);
  if (problem.discharge) {
    sim.nodes[0] = kGround;
  } else {
    const SimNodeId rail = c.add_node("rail");
    c.drive(rail, numeric::PwlWaveform::constant(v_rail));
    sim.nodes[0] = rail;
  }
  for (std::size_t k = 1; k <= m; ++k) {
    sim.nodes[k] = c.add_node("p" + std::to_string(k));
    if (problem.node_caps[k - 1] > 0.0)
      c.add_capacitor(sim.nodes[k], kGround, problem.node_caps[k - 1]);
  }

  // Initial conditions: QWM's worst-case precharge — every node at the
  // far rail except the positions below the switching element, which sit
  // at the event rail (see Engine::run) — or the explicit override.
  int e_switch = -1;
  for (std::size_t e = 0; e < problem.elements.size(); ++e) {
    if (problem.elements[e].kind == Element::Kind::transistor &&
        problem.elements[e].input >= 0) {
      e_switch = static_cast<int>(e);
      break;
    }
  }
  for (std::size_t k = 1; k <= m; ++k) {
    double v0 = v_far;
    if (e_switch > 0 && static_cast<int>(k) <= e_switch) v0 = v_rail;
    if (initial_voltages.size() == m) v0 = initial_voltages[k - 1];
    c.set_ic(sim.nodes[k], v0);
  }

  for (std::size_t e = 0; e < problem.elements.size(); ++e) {
    const Element& el = problem.elements[e];
    const SimNodeId near = sim.nodes[e];
    const SimNodeId far = sim.nodes[e + 1];
    if (el.kind == Element::Kind::resistor) {
      c.add_resistor(near, far, el.resistance);
      continue;
    }
    SimNodeId g;
    if (el.input >= 0 && el.input < static_cast<int>(inputs.size())) {
      g = c.add_node("in" + std::to_string(el.input) + "." + std::to_string(e));
      c.drive(g, inputs[el.input]);
    } else {
      g = c.add_node("sg" + std::to_string(e));
      c.drive(g, numeric::PwlWaveform::constant(el.static_gate));
    }
    const SimNodeId d = el.src_is_far ? far : near;
    const SimNodeId s = el.src_is_far ? near : far;
    c.add_mosfet(el.model, el.w, el.l, d, g, s);
  }
  return sim;
}

FlatSim circuit_from_flat(const netlist::FlatNetlist& nl,
                          const device::ModelSet& models,
                          std::vector<std::string>* errors) {
  FlatSim sim;
  Circuit& c = sim.circuit;
  sim.node_of.assign(nl.net_count(), -1);
  sim.node_of[netlist::kGroundNet] = kGround;
  for (std::size_t i = 1; i < nl.net_count(); ++i)
    sim.node_of[i] = c.add_node(nl.net_name(static_cast<netlist::NetId>(i)));

  for (const auto& v : nl.vsources) {
    if (v.neg != netlist::kGroundNet) {
      if (errors)
        errors->push_back("vsource " + v.name +
                          " is not ground-referenced; unsupported");
      continue;
    }
    c.drive(sim.node_of[v.pos], v.waveform);
  }
  for (const auto& src : nl.isources)
    c.add_current_source(sim.node_of[src.pos], sim.node_of[src.neg],
                         src.waveform);
  for (const auto& r : nl.resistors)
    c.add_resistor(sim.node_of[r.a], sim.node_of[r.b], r.value);
  for (const auto& cp : nl.capacitors)
    c.add_capacitor(sim.node_of[cp.a], sim.node_of[cp.b], cp.value);
  for (const auto& m : nl.mosfets) {
    const device::DeviceModel& model = models.model_for(m.type);
    c.add_mosfet(&model, m.w, m.l, sim.node_of[m.drain], sim.node_of[m.gate],
                 sim.node_of[m.source]);
    if (sim.node_of[m.drain] != kGround)
      c.add_capacitor(sim.node_of[m.drain], kGround, model.src_cap(m.w, m.l));
    if (sim.node_of[m.source] != kGround)
      c.add_capacitor(sim.node_of[m.source], kGround, model.snk_cap(m.w, m.l));
    // The gate load matters when the gate net is driven by another stage.
    if (sim.node_of[m.gate] != kGround)
      c.add_capacitor(sim.node_of[m.gate], kGround, model.input_cap(m.w, m.l));
  }
  return sim;
}

}  // namespace qwm::spice
