// Builders turning analysis-level structures (LogicStage, FlatNetlist)
// into simulation circuits for the transient engine. Device parasitic
// capacitances are instantiated from the same DeviceModel capacitance
// queries QWM uses, so both engines see identical loading.
#pragma once

#include <vector>

#include "qwm/circuit/path.h"
#include "qwm/circuit/stage.h"
#include "qwm/device/model_set.h"
#include "qwm/netlist/flat.h"
#include "qwm/spice/circuit.h"

namespace qwm::spice {

struct StageSim {
  Circuit circuit;
  /// stage NodeId -> SimNodeId (rails map to the driven VDD node / ground).
  std::vector<SimNodeId> node_of;
  /// input InputId -> the driven gate SimNodeId.
  std::vector<SimNodeId> input_node_of;
};

/// Builds a simulation circuit for one logic stage. `input_waveforms[i]`
/// drives stage input i. Wire edges expand into `wire_segments`-section RC
/// ladders (explicit R/C values honored when present).
StageSim circuit_from_stage(
    const circuit::LogicStage& stage, const device::ModelSet& models,
    const std::vector<numeric::PwlWaveform>& input_waveforms,
    int wire_segments = 4);

struct PathSim {
  Circuit circuit;
  /// Path position -> sim node. nodes[0] is the (driven) event rail;
  /// nodes[k] for k >= 1 is path position k, nodes.back() the output.
  std::vector<SimNodeId> nodes;
};

/// Builds a simulation circuit for a fully-lumped PathProblem — the exact
/// system QWM solves, with node_caps as explicit grounded capacitors (the
/// lumping already folded in every parasitic, so none are re-added). Used
/// as the fallback ladder's golden-path rung. Initial conditions follow
/// QWM's worst-case precharge unless `initial_voltages` (one entry per
/// path position >= 1) overrides them.
PathSim circuit_from_path(const circuit::PathProblem& problem,
                          const std::vector<numeric::PwlWaveform>& inputs,
                          const std::vector<double>& initial_voltages = {});

struct FlatSim {
  Circuit circuit;
  /// net -> sim node (ground maps to ground).
  std::vector<SimNodeId> node_of;
};

/// Builds a simulation circuit for a full flat netlist. Voltage sources
/// must reference ground on their negative terminal (driven-node
/// formulation); others are rejected via `errors`.
FlatSim circuit_from_flat(const netlist::FlatNetlist& nl,
                          const device::ModelSet& models,
                          std::vector<std::string>* errors = nullptr);

}  // namespace qwm::spice
