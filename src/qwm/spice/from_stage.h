// Builders turning analysis-level structures (LogicStage, FlatNetlist)
// into simulation circuits for the transient engine. Device parasitic
// capacitances are instantiated from the same DeviceModel capacitance
// queries QWM uses, so both engines see identical loading.
#pragma once

#include <vector>

#include "qwm/circuit/stage.h"
#include "qwm/device/model_set.h"
#include "qwm/netlist/flat.h"
#include "qwm/spice/circuit.h"

namespace qwm::spice {

struct StageSim {
  Circuit circuit;
  /// stage NodeId -> SimNodeId (rails map to the driven VDD node / ground).
  std::vector<SimNodeId> node_of;
  /// input InputId -> the driven gate SimNodeId.
  std::vector<SimNodeId> input_node_of;
};

/// Builds a simulation circuit for one logic stage. `input_waveforms[i]`
/// drives stage input i. Wire edges expand into `wire_segments`-section RC
/// ladders (explicit R/C values honored when present).
StageSim circuit_from_stage(
    const circuit::LogicStage& stage, const device::ModelSet& models,
    const std::vector<numeric::PwlWaveform>& input_waveforms,
    int wire_segments = 4);

struct FlatSim {
  Circuit circuit;
  /// net -> sim node (ground maps to ground).
  std::vector<SimNodeId> node_of;
};

/// Builds a simulation circuit for a full flat netlist. Voltage sources
/// must reference ground on their negative terminal (driven-node
/// formulation); others are rejected via `errors`.
FlatSim circuit_from_flat(const netlist::FlatNetlist& nl,
                          const device::ModelSet& models,
                          std::vector<std::string>* errors = nullptr);

}  // namespace qwm::spice
