#include "qwm/spice/circuit.h"

#include <cassert>

namespace qwm::spice {

Circuit::Circuit() { nodes_.push_back(Node{"0", {}, 0.0}); }

SimNodeId Circuit::add_node(const std::string& name) {
  nodes_.push_back(Node{name, {}, std::numeric_limits<double>::quiet_NaN()});
  return static_cast<SimNodeId>(nodes_.size() - 1);
}

void Circuit::drive(SimNodeId n, numeric::PwlWaveform w) {
  assert(n != kGround);
  nodes_[n].driven = std::move(w);
}

void Circuit::set_ic(SimNodeId n, double v) { nodes_[n].ic = v; }

void Circuit::add_resistor(SimNodeId a, SimNodeId b, double r) {
  assert(r > 0.0);
  resistors_.push_back(Resistor{a, b, r});
}

void Circuit::add_capacitor(SimNodeId a, SimNodeId b, double c) {
  assert(c >= 0.0);
  capacitors_.push_back(Capacitor{a, b, c});
}

void Circuit::add_mosfet(const device::DeviceModel* model, double w, double l,
                         SimNodeId d, SimNodeId g, SimNodeId s) {
  assert(model != nullptr && w > 0.0 && l > 0.0);
  mosfets_.push_back(Mosfet{model, w, l, d, g, s});
}

void Circuit::add_current_source(SimNodeId pos, SimNodeId neg,
                                 numeric::PwlWaveform w) {
  isources_.push_back(CurrentSource{pos, neg, std::move(w)});
}

}  // namespace qwm::spice
