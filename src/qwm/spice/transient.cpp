#include "qwm/spice/transient.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "qwm/device/tabular_model.h"
#include "qwm/numeric/matrix.h"

namespace qwm::spice {

namespace {

/// Shared assembly state for DC and transient solves.
struct Solver {
  const Circuit& ckt;
  const TransientOptions& opt;
  TransientStats* stats = nullptr;

  std::vector<int> unknown_of;  ///< node -> unknown index or -1
  std::vector<SimNodeId> node_of_unknown;
  std::size_t n_unknowns = 0;

  /// true while the node's explicit IC pins it (DC op only).
  std::vector<char> ic_pinned;

  Solver(const Circuit& c, const TransientOptions& o, bool pin_ics)
      : ckt(c), opt(o) {
    const std::size_t n = c.node_count();
    unknown_of.assign(n, -1);
    ic_pinned.assign(n, 0);
    for (std::size_t i = 1; i < n; ++i) {
      const auto& nd = c.node(i);
      if (nd.driven) continue;
      if (pin_ics && !std::isnan(nd.ic)) {
        ic_pinned[i] = 1;
        continue;
      }
      unknown_of[i] = static_cast<int>(n_unknowns++);
      node_of_unknown.push_back(static_cast<SimNodeId>(i));
    }
    // Devirtualize once: cache each mosfet's concrete tabular model and
    // group mosfets per distinct model (NMOS/PMOS in practice) so the NR
    // loop evaluates each group through one batched SoA call.
    if (opt.batch_device_eval) {
      const auto& mos = ckt.mosfets();
      tab_of_.resize(mos.size());
      group_results_.resize(mos.size());
      group_swap_.resize(mos.size());
      for (std::size_t i = 0; i < mos.size(); ++i) {
        tab_of_[i] = mos[i].model->tabular();
        if (tab_of_[i] == nullptr) continue;
        BatchGroup* g = nullptr;
        for (auto& cand : groups_)
          if (cand.model == tab_of_[i]) g = &cand;
        if (g == nullptr) {
          groups_.push_back(BatchGroup{});
          g = &groups_.back();
          g->model = tab_of_[i];
        }
        g->mosfets.push_back(i);
      }
    }
  }

  /// Full node-voltage vector from the unknown vector at time t.
  void full_voltages(const std::vector<double>& x, double t,
                     std::vector<double>& v) const {
    v.assign(ckt.node_count(), 0.0);
    for (std::size_t i = 1; i < ckt.node_count(); ++i) {
      const auto& nd = ckt.node(i);
      if (nd.driven)
        v[i] = nd.driven->eval(t);
      else if (ic_pinned[i])
        v[i] = nd.ic;
      else
        v[i] = x[unknown_of[i]];
    }
  }

  /// Assembles residual F (currents leaving each unknown node) and, when
  /// `jac` is non-null, the Jacobian dF/dx. Capacitors are included when
  /// `with_caps`, using the theta-method companion with the previous-step
  /// voltages `v_prev` and branch currents `i_prev`.
  void assemble(const std::vector<double>& v, double t, bool with_caps,
                double h, const std::vector<double>& v_prev,
                const std::vector<double>& i_prev, std::vector<double>& f,
                numeric::Matrix* jac, double gmin) {
    f.assign(n_unknowns, 0.0);
    if (jac) jac->resize(n_unknowns, n_unknowns);

    const auto add_f = [&](SimNodeId n, double i) {
      const int u = unknown_of[n];
      if (u >= 0) f[u] += i;
    };
    const auto add_j = [&](SimNodeId n, SimNodeId wrt, double g) {
      if (!jac) return;
      const int u = unknown_of[n];
      const int w = unknown_of[wrt];
      if (u >= 0 && w >= 0) (*jac)(u, w) += g;
    };

    // gmin to ground at every non-ground node.
    for (std::size_t i = 1; i < ckt.node_count(); ++i) {
      add_f(static_cast<SimNodeId>(i), gmin * v[i]);
      add_j(static_cast<SimNodeId>(i), static_cast<SimNodeId>(i), gmin);
    }

    for (const auto& r : ckt.resistors()) {
      const double g = 1.0 / r.r;
      const double i = g * (v[r.a] - v[r.b]);
      add_f(r.a, i);
      add_f(r.b, -i);
      add_j(r.a, r.a, g);
      add_j(r.a, r.b, -g);
      add_j(r.b, r.b, g);
      add_j(r.b, r.a, -g);
    }

    for (const auto& src : ckt.current_sources()) {
      const double i = src.waveform.eval(t);
      add_f(src.pos, i);
      add_f(src.neg, -i);
    }

    // Device evaluations: gather each batch group's frame coordinates,
    // run one eval_frames per group, then stamp every mosfet in circuit
    // order (stamping order fixes the floating-point accumulation, so the
    // batched and scalar paths produce identical bits).
    const auto& mos = ckt.mosfets();
    for (BatchGroup& g : groups_) {
      g.fg.clear();
      g.flo.clear();
      g.fhi.clear();
      for (const std::size_t i : g.mosfets) {
        const auto& m = mos[i];
        const auto fm = g.model->to_frame(
            device::TerminalVoltages{v[m.g], v[m.d], v[m.s]});
        g.fg.push_back(fm.fg);
        g.flo.push_back(fm.flo);
        g.fhi.push_back(fm.fhi);
        group_swap_[i] = fm.swapped ? 1 : 0;
      }
      g.fe.resize(g.mosfets.size());
      g.model->eval_frames(g.mosfets.size(), g.fg.data(), g.flo.data(),
                           g.fhi.data(), g.fe.data());
      for (std::size_t j = 0; j < g.mosfets.size(); ++j) {
        const std::size_t i = g.mosfets[j];
        group_results_[i] = g.model->from_frame(g.fe[j], group_swap_[i] != 0,
                                                mos[i].w, mos[i].l);
      }
    }
    for (std::size_t i = 0; i < mos.size(); ++i) {
      const auto& m = mos[i];
      const bool batched = opt.batch_device_eval && tab_of_[i] != nullptr;
      const device::IvEval e =
          batched ? group_results_[i]
                  : m.model->iv_eval(m.w, m.l, device::TerminalVoltages{
                                                   v[m.g], v[m.d], v[m.s]});
      if (stats) ++stats->device_evals;
      add_f(m.d, e.i);
      add_f(m.s, -e.i);
      add_j(m.d, m.d, e.d_src);
      add_j(m.d, m.s, e.d_snk);
      add_j(m.d, m.g, e.d_input);
      add_j(m.s, m.d, -e.d_src);
      add_j(m.s, m.s, -e.d_snk);
      add_j(m.s, m.g, -e.d_input);
    }

    if (with_caps) {
      const double theta = opt.theta;
      for (std::size_t ci = 0; ci < ckt.capacitors().size(); ++ci) {
        const auto& c = ckt.capacitors()[ci];
        if (c.c <= 0.0) continue;
        const double geq = c.c / (theta * h);
        const double vab = v[c.a] - v[c.b];
        const double vab0 = v_prev[c.a] - v_prev[c.b];
        const double i = geq * (vab - vab0) - (1.0 - theta) / theta * i_prev[ci];
        add_f(c.a, i);
        add_f(c.b, -i);
        add_j(c.a, c.a, geq);
        add_j(c.a, c.b, -geq);
        add_j(c.b, c.b, geq);
        add_j(c.b, c.a, -geq);
      }
    }
  }

  /// The constant admittance matrix of the successive-chords engine:
  /// linear element stamps plus a fixed chord conductance per transistor
  /// channel (paper §II, TETA). Independent of the solution, so its LU is
  /// computed once and reused by every iteration of every time step.
  numeric::Matrix chord_matrix(double h, double gmin) const {
    numeric::Matrix g(n_unknowns, n_unknowns);
    const auto add = [&](SimNodeId a, SimNodeId b, double val) {
      const int u = unknown_of[a];
      const int w = unknown_of[b];
      if (u >= 0 && w >= 0) g(u, w) += val;
    };
    for (std::size_t i = 1; i < ckt.node_count(); ++i)
      add(static_cast<SimNodeId>(i), static_cast<SimNodeId>(i), gmin);
    for (const auto& r : ckt.resistors()) {
      const double gr = 1.0 / r.r;
      add(r.a, r.a, gr);
      add(r.a, r.b, -gr);
      add(r.b, r.b, gr);
      add(r.b, r.a, -gr);
    }
    for (const auto& c : ckt.capacitors()) {
      if (c.c <= 0.0) continue;
      const double geq = c.c / (opt.theta * h);
      add(c.a, c.a, geq);
      add(c.a, c.b, -geq);
      add(c.b, c.b, geq);
      add(c.b, c.a, -geq);
    }
    for (const auto& m : ckt.mosfets()) {
      const double gc = opt.chord_conductance * (m.w / 1e-6);
      add(m.d, m.d, gc);
      add(m.d, m.s, -gc);
      add(m.s, m.s, gc);
      add(m.s, m.d, -gc);
    }
    return g;
  }

  /// Damped NR (or successive-chords) solve at time t. Returns true on
  /// convergence; x is updated in place. `with_caps` false = DC operating
  /// point (always Newton: the chord matrix needs the cap companion).
  bool newton(double t, bool with_caps, double h,
              const std::vector<double>& v_prev,
              const std::vector<double>& i_prev, std::vector<double>& x,
              double gmin, int* iterations_out = nullptr) {
    // Solver-owned scratch (v_, f_, rhs_, dx_, jac_): grow-only buffers,
    // so the per-iteration loop below allocates nothing at steady size.
    std::vector<double>& v = v_;
    std::vector<double>& f = f_;
    numeric::Matrix& jac = jac_;
    const double vmax_step = 0.5;  // volts per NR update, clamped
    const bool use_chords =
        with_caps && opt.solver == NonlinearSolver::successive_chords;
    if (use_chords && (!chord_lu_ || chord_h_ != h)) {
      chord_lu_ =
          std::make_unique<numeric::LuFactorization>(chord_matrix(h, gmin));
      chord_h_ = h;
      if (!chord_lu_->ok()) return false;
    }
    const int max_iterations =
        use_chords ? 4 * opt.nr_max_iterations : opt.nr_max_iterations;

    for (int iter = 0; iter < max_iterations; ++iter) {
      full_voltages(x, t, v);
      assemble(v, t, with_caps, h, v_prev, i_prev, f,
               use_chords ? nullptr : &jac, gmin);
      if (stats) ++stats->nr_iterations;
      rhs_.assign(f.size(), 0.0);
      for (std::size_t i = 0; i < f.size(); ++i) rhs_[i] = -f[i];
      std::vector<double>& dx = dx_;
      if (use_chords) {
        chord_lu_->solve(rhs_, dx);  // back-substitution only
      } else {
        if (stats) ++stats->linear_solves;
        numeric::LuFactorization lu(jac);
        if (!lu.ok()) return false;
        lu.solve(rhs_, dx);
      }

      double dmax = 0.0;
      for (double d : dx) dmax = std::max(dmax, std::abs(d));
      const double scale = dmax > vmax_step ? vmax_step / dmax : 1.0;
      for (std::size_t i = 0; i < x.size(); ++i) x[i] += scale * dx[i];

      if (dmax * scale < opt.v_tolerance) {
        // Confirm the residual as well.
        full_voltages(x, t, v);
        assemble(v, t, with_caps, h, v_prev, i_prev, f, nullptr, gmin);
        if (numeric::inf_norm(f) < 1e-6 /* amps; generous for stiff caps */) {
          if (iterations_out) *iterations_out = iter + 1;
          return true;
        }
      }
    }
    return false;
  }

  /// Accumulates charge[d] += I_leaving(d) * h for every driven node d.
  /// `i_cap` holds the capacitor branch currents already updated for this
  /// step's end state `v`.
  void accumulate_driven_charge(const std::vector<double>& v, double t,
                                double h, const std::vector<double>& i_cap,
                                std::vector<double>* charge) const {
    const auto is_driven = [&](SimNodeId n) {
      return n != kGround && ckt.node(n).driven.has_value();
    };
    const auto add = [&](SimNodeId n, double i) {
      if (is_driven(n)) (*charge)[n] += i * h;
    };
    for (const auto& r : ckt.resistors()) {
      const double i = (v[r.a] - v[r.b]) / r.r;
      add(r.a, i);
      add(r.b, -i);
    }
    for (const auto& m : ckt.mosfets()) {
      const double i = m.model->iv(
          m.w, m.l, device::TerminalVoltages{v[m.g], v[m.d], v[m.s]});
      add(m.d, i);
      add(m.s, -i);
    }
    for (std::size_t ci = 0; ci < ckt.capacitors().size(); ++ci) {
      const auto& c = ckt.capacitors()[ci];
      add(c.a, i_cap[ci]);
      add(c.b, -i_cap[ci]);
    }
    for (const auto& src : ckt.current_sources()) {
      const double i = src.waveform.eval(t);
      add(src.pos, i);
      add(src.neg, -i);
    }
  }

  std::unique_ptr<numeric::LuFactorization> chord_lu_;
  double chord_h_ = -1.0;

  /// Batched device evaluation state (built once in the constructor when
  /// opt.batch_device_eval): each group holds the mosfets sharing one
  /// concrete tabular model plus SoA gather buffers for their frame
  /// coordinates. Empty when batching is off.
  struct BatchGroup {
    const device::TabularDeviceModel* model = nullptr;
    std::vector<std::size_t> mosfets;        ///< indices into ckt.mosfets()
    std::vector<double> fg, flo, fhi;        ///< SoA frame coordinates
    std::vector<device::TabularDeviceModel::FrameEval> fe;
  };
  std::vector<const device::TabularDeviceModel*> tab_of_;
  std::vector<BatchGroup> groups_;
  std::vector<device::IvEval> group_results_;  ///< per-mosfet, circuit order
  std::vector<char> group_swap_;               ///< per-mosfet drain/source swap

  /// NR scratch, reused across iterations and steps (grow-only).
  std::vector<double> v_, f_, rhs_, dx_;
  numeric::Matrix jac_;
};

}  // namespace

std::vector<double> dc_operating_point(const Circuit& circuit, double t0,
                                       const TransientOptions& options,
                                       bool* converged) {
  Solver s(circuit, options, /*pin_ics=*/true);
  std::vector<double> x(s.n_unknowns, 0.0);
  // Start unknowns midway to the supply region for better basins.
  std::vector<double> empty_v(circuit.node_count(), 0.0), empty_i;

  bool ok = false;
  // gmin stepping: relax toward the target gmin if the direct solve fails.
  for (const double g : {options.gmin, 1e-9, 1e-6, 1e-3}) {
    if (g < options.gmin) continue;
    ok = s.newton(t0, /*with_caps=*/false, 1.0, empty_v, empty_i, x, g);
    if (ok && g == options.gmin) break;
    if (ok) {
      // Continue from the relaxed solution back at the target gmin.
      ok = s.newton(t0, false, 1.0, empty_v, empty_i, x, options.gmin);
      break;
    }
  }
  if (converged) *converged = ok;

  std::vector<double> v;
  s.full_voltages(x, t0, v);
  return v;
}

TransientResult simulate_transient(const Circuit& circuit,
                                   const TransientOptions& options) {
  TransientResult result;
  TransientStats& stats = result.stats;
  Solver s(circuit, options, /*pin_ics=*/false);
  s.stats = &stats;

  // Initial state: DC operating point with ICs pinned.
  std::vector<double> v_now =
      dc_operating_point(circuit, 0.0, options, nullptr);
  // Nodes with explicit ICs start there even in the free transient system.
  for (std::size_t i = 1; i < circuit.node_count(); ++i)
    if (!circuit.node(i).driven && !std::isnan(circuit.node(i).ic))
      v_now[i] = circuit.node(i).ic;

  std::vector<double> x(s.n_unknowns, 0.0);
  for (std::size_t u = 0; u < s.n_unknowns; ++u)
    x[u] = v_now[s.node_of_unknown[u]];

  std::vector<double> i_cap(circuit.capacitors().size(), 0.0);

  result.waveforms.assign(circuit.node_count(), numeric::PwlWaveform());
  result.driven_charge.assign(circuit.node_count(), 0.0);
  const auto record = [&](double t, const std::vector<double>& v) {
    for (std::size_t i = 0; i < v.size(); ++i)
      result.waveforms[i].append(t, v[i]);
  };
  record(0.0, v_now);

  double t = 0.0;
  double h = options.dt;
  std::vector<double> v_next;
  std::vector<double> x_try;
  while (t < options.t_stop - 1e-18) {
    h = std::min(h, options.t_stop - t);
    const double t_next = t + h;

    x_try.assign(x.begin(), x.end());
    int iters = 0;
    bool ok = s.newton(t_next, /*with_caps=*/true, h, v_now, i_cap, x_try,
                       options.gmin, &iters);
    if (!ok) {
      if (options.adaptive && h > options.dt_min * 1.0001) {
        h = std::max(h * 0.25, options.dt_min);
        continue;  // retry the step smaller
      }
      stats.converged = false;
      // March on with the best effort solution to keep the trace usable.
    }

    x = x_try;
    s.full_voltages(x, t_next, v_next);
    // Update capacitor branch currents for the theta companion.
    for (std::size_t ci = 0; ci < circuit.capacitors().size(); ++ci) {
      const auto& c = circuit.capacitors()[ci];
      if (c.c <= 0.0) continue;
      const double geq = c.c / (options.theta * h);
      const double vab = v_next[c.a] - v_next[c.b];
      const double vab0 = v_now[c.a] - v_now[c.b];
      i_cap[ci] =
          geq * (vab - vab0) - (1.0 - options.theta) / options.theta * i_cap[ci];
    }
    s.accumulate_driven_charge(v_next, t_next, h, i_cap,
                               &result.driven_charge);
    v_now = v_next;
    t = t_next;
    ++stats.steps;
    record(t, v_now);

    if (options.adaptive) {
      if (iters <= 4)
        h = std::min(h * 1.3, options.dt_max);
      else if (iters > 12)
        h = std::max(h * 0.5, options.dt_min);
    }
  }
  return result;
}

}  // namespace qwm::spice
