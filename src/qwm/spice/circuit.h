// Simulation circuit for the SPICE-class baseline engine.
//
// Node-voltage formulation: node 0 is ground; any node may be *driven*
// (its voltage follows a stimulus waveform — the supplies and stage
// inputs), every other node is an unknown. Restricting sources to driven
// nodes keeps the system pure nodal (no branch-current unknowns) while
// covering everything transistor-level stage analysis needs.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "qwm/device/device_model.h"
#include "qwm/numeric/pwl.h"

namespace qwm::spice {

using SimNodeId = int;
constexpr SimNodeId kGround = 0;

class Circuit {
 public:
  struct Node {
    std::string name;
    std::optional<numeric::PwlWaveform> driven;
    /// Explicit initial condition; NaN = take the DC operating point.
    double ic = std::numeric_limits<double>::quiet_NaN();
  };
  struct Resistor {
    SimNodeId a, b;
    double r;
  };
  struct Capacitor {
    SimNodeId a, b;
    double c;
  };
  struct Mosfet {
    const device::DeviceModel* model;
    double w, l;
    SimNodeId d, g, s;
  };
  /// Independent current source: waveform(t) amps flow from `pos` through
  /// the source into `neg` (SPICE convention).
  struct CurrentSource {
    SimNodeId pos, neg;
    numeric::PwlWaveform waveform;
  };

  Circuit();

  SimNodeId add_node(const std::string& name);
  void drive(SimNodeId n, numeric::PwlWaveform w);
  void set_ic(SimNodeId n, double v);

  void add_resistor(SimNodeId a, SimNodeId b, double r);
  void add_capacitor(SimNodeId a, SimNodeId b, double c);
  void add_mosfet(const device::DeviceModel* model, double w, double l,
                  SimNodeId d, SimNodeId g, SimNodeId s);
  void add_current_source(SimNodeId pos, SimNodeId neg,
                          numeric::PwlWaveform w);

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(SimNodeId n) const { return nodes_[n]; }
  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  const std::vector<CurrentSource>& current_sources() const {
    return isources_;
  }

 private:
  std::vector<Node> nodes_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Mosfet> mosfets_;
  std::vector<CurrentSource> isources_;
};

}  // namespace qwm::spice
