// Time-domain transient engine: the paper's SPICE baseline.
//
// Classic structure: at every time step, device models are linearized and
// a Newton–Raphson iteration solves the nodal equations; the step marches
// with a theta-method companion model for capacitors (theta = 1 backward
// Euler, theta = 0.5 trapezoidal — Hspice's default family). The
// user-specified fixed step size (1 ps / 10 ps in the paper's tables)
// drives the cost comparison against QWM; an iteration-count-adaptive
// mode is included for completeness.
//
// A small gmin conductance ties every node to ground (SPICE convention)
// so that dynamically floating nodes keep a well-posed DC solution.
#pragma once

#include <cstddef>
#include <vector>

#include "qwm/numeric/pwl.h"
#include "qwm/spice/circuit.h"

namespace qwm::spice {

/// Nonlinear iteration engine for the per-step solve.
enum class NonlinearSolver {
  newton_raphson,    ///< fresh Jacobian + LU every iteration (SPICE)
  successive_chords, ///< TETA's engine (paper §II): one *constant*
                     ///< admittance matrix, factored once per run, its
                     ///< LU reused by every iteration of every step —
                     ///< slower convergence, far cheaper iterations
};

struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;       ///< fixed step (paper: 1 ps and 10 ps)
  double theta = 0.5;      ///< 1 = backward Euler, 0.5 = trapezoidal
  double gmin = 1e-12;     ///< conductance to ground at every node [S]
  bool adaptive = false;   ///< iteration-count step control
  double dt_min = 1e-14;   ///< adaptive bounds
  double dt_max = 1e-11;
  int nr_max_iterations = 50;
  double v_tolerance = 1e-6;  ///< NR update tolerance [V]
  double i_tolerance = 1e-12; ///< NR residual tolerance [A]
  NonlinearSolver solver = NonlinearSolver::newton_raphson;
  /// Evaluate transistors through the concrete tabular model's batched
  /// SoA kernel, grouped per model (NMOS/PMOS), instead of one virtual
  /// call per device per iteration. Bit-identical results — the toggle
  /// exists for the equivalence tests and ablation.
  bool batch_device_eval = true;
  /// Chord conductance assigned to each transistor in the constant
  /// admittance matrix (successive chords only) [S]. A mid-swing
  /// effective conductance; convergence is guaranteed for any value
  /// above half the maximum devices' incremental conductance, at the
  /// cost of more iterations.
  double chord_conductance = 2e-3;
};

struct TransientStats {
  std::size_t steps = 0;
  std::size_t nr_iterations = 0;
  std::size_t linear_solves = 0;
  std::size_t device_evals = 0;
  bool converged = true;  ///< false if any step failed to converge
};

struct TransientResult {
  /// Waveform per circuit node (index = SimNodeId; ground included).
  std::vector<numeric::PwlWaveform> waveforms;
  /// Charge delivered by each *driven* node over the run [C] (index =
  /// SimNodeId, 0 for undriven nodes). For a supply node at constant VDD,
  /// energy = VDD * charge; an inverter transition costs ~C_load * VDD^2
  /// plus short-circuit charge.
  std::vector<double> driven_charge;
  TransientStats stats;
};

/// DC operating point at time `t0`: capacitors open, driven nodes at their
/// stimulus value, explicit ICs honored as fixed voltages. Returns one
/// voltage per node. `converged` (optional) reports NR success.
std::vector<double> dc_operating_point(const Circuit& circuit, double t0,
                                       const TransientOptions& options = {},
                                       bool* converged = nullptr);

/// Full transient run over [0, t_stop].
TransientResult simulate_transient(const Circuit& circuit,
                                   const TransientOptions& options);

}  // namespace qwm::spice
