// Asymptotic Waveform Evaluation: low-order Padé pole/residue extraction
// from circuit moments (Pillage & Rohrer; paper §II).
//
// Given voltage moments m_0..m_{2q-1} of a node, finds q real stable
// poles/residues whose series matches the moments. Falls back to lower
// order when the requested order produces complex or unstable poles —
// the standard AWE stability workaround for RC-dominated nets.
#pragma once

#include <optional>
#include <vector>

namespace qwm::interconnect {

struct AweApprox {
  std::vector<double> poles;     ///< all negative (stable)
  std::vector<double> residues;  ///< matching k_i of sum k_i/(s - p_i)
  int order = 0;

  /// Normalized step response value at time t (0 -> 1 rise).
  double step_value(double t) const;
  /// Earliest time where the step response crosses `level` in (0, 1).
  std::optional<double> step_crossing(double level) const;
};

/// Reduces moments (m[0] = 1, m[1], ...; at least 2q entries) to at most
/// q poles. Returns nullopt only when even the 1-pole fallback fails
/// (e.g. non-negative m1).
std::optional<AweApprox> awe_reduce(const std::vector<double>& moments, int q);

}  // namespace qwm::interconnect
