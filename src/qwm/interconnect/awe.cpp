#include "qwm/interconnect/awe.h"

#include <algorithm>
#include <cmath>

#include "qwm/numeric/matrix.h"
#include "qwm/numeric/roots.h"

namespace qwm::interconnect {

namespace {

/// Attempts an exactly-q-pole fit; empty on numerical failure or
/// unstable/complex poles.
std::optional<AweApprox> try_order(const std::vector<double>& m, int q) {
  if (static_cast<int>(m.size()) < 2 * q) return std::nullopt;

  // The moment sequence satisfies m_{k+q} = sum_j c_j m_{k+j}; solve the
  // q x q Hankel system for the recurrence coefficients.
  numeric::Matrix h(q, q);
  numeric::Vector rhs(q);
  for (int r = 0; r < q; ++r) {
    for (int c = 0; c < q; ++c) h(r, c) = m[r + c];
    rhs[r] = m[r + q];
  }
  const numeric::Vector coef = numeric::lu_solve(h, rhs);
  if (coef.empty()) return std::nullopt;

  // Roots x_i of lambda^q - c_{q-1} lambda^{q-1} - ... - c_0; poles are
  // p_i = 1/x_i.
  std::vector<double> roots;
  if (q == 1) {
    roots = {coef[0]};
  } else if (q == 2) {
    roots = numeric::quadratic_roots(1.0, -coef[1], -coef[0]);
  } else if (q == 3) {
    roots = numeric::cubic_roots_monic(-coef[2], -coef[1], -coef[0]);
  } else {
    return std::nullopt;  // orders above 3 unsupported (RC nets never need them here)
  }
  if (static_cast<int>(roots.size()) != q) return std::nullopt;
  for (double x : roots)
    if (!(x < 0.0) || !std::isfinite(x)) return std::nullopt;  // unstable

  // Residue-side solve: a_i from the Vandermonde system sum a_i x_i^k = m_k.
  numeric::Matrix vand(q, q);
  numeric::Vector mv(q);
  for (int r = 0; r < q; ++r) {
    for (int c = 0; c < q; ++c) vand(r, c) = std::pow(roots[c], r);
    mv[r] = m[r];
  }
  const numeric::Vector a = numeric::lu_solve(vand, mv);
  if (a.empty()) return std::nullopt;

  AweApprox out;
  out.order = q;
  for (int i = 0; i < q; ++i) {
    const double p = 1.0 / roots[i];
    out.poles.push_back(p);
    out.residues.push_back(-a[i] * p);  // k_i = -a_i p_i
  }
  return out;
}

}  // namespace

double AweApprox::step_value(double t) const {
  // v(t) = 1 + sum (k_i / p_i) e^{p_i t}; the constant is exactly 1 when
  // m0 was matched (it was: the Vandermonde solve includes k = 0).
  double v = 1.0;
  for (std::size_t i = 0; i < poles.size(); ++i)
    v += residues[i] / poles[i] * std::exp(poles[i] * t);
  return v;
}

std::optional<double> AweApprox::step_crossing(double level) const {
  if (poles.empty() || level <= 0.0 || level >= 1.0) return std::nullopt;
  // Bracket using the slowest time constant.
  double tau = 0.0;
  for (double p : poles) tau = std::max(tau, -1.0 / p);
  double hi = tau;
  for (int i = 0; i < 120 && step_value(hi) < level; ++i) hi *= 2.0;
  if (step_value(hi) < level) return std::nullopt;
  // The response can be non-monotonic near t = 0 for q >= 2; walk forward
  // to find the first bracketing interval.
  const int kScan = 512;
  double prev_t = 0.0, prev_v = step_value(0.0);
  for (int i = 1; i <= kScan; ++i) {
    const double t = hi * static_cast<double>(i) / kScan;
    const double v = step_value(t);
    if ((prev_v - level) * (v - level) <= 0.0) {
      auto root = numeric::bisect(
          [&](double tt) { return step_value(tt) - level; }, prev_t, t,
          1e-18);
      if (root) return root;
    }
    prev_t = t;
    prev_v = v;
  }
  return std::nullopt;
}

std::optional<AweApprox> awe_reduce(const std::vector<double>& moments,
                                    int q) {
  for (int order = std::min<int>(q, 3); order >= 1; --order) {
    auto fit = try_order(moments, order);
    if (fit) return fit;
  }
  return std::nullopt;
}

}  // namespace qwm::interconnect
