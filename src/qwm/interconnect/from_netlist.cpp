#include "qwm/interconnect/from_netlist.h"

#include <map>
#include <queue>

namespace qwm::interconnect {

std::optional<int> NetlistTree::node_of(netlist::NetId net) const {
  for (std::size_t i = 0; i < net_of_node.size(); ++i)
    if (net_of_node[i] == net) return static_cast<int>(i);
  return std::nullopt;
}

std::optional<NetlistTree> rc_tree_from_netlist(
    const netlist::FlatNetlist& nl, netlist::NetId root,
    std::vector<std::string>* warnings) {
  NetlistTree out;
  out.net_of_node.push_back(root);

  // Adjacency over resistors (ground does not conduct the tree).
  std::multimap<netlist::NetId, const netlist::Resistor*> adj;
  for (const auto& r : nl.resistors) {
    if (r.a != netlist::kGroundNet && r.b != netlist::kGroundNet) {
      adj.emplace(r.a, &r);
      adj.emplace(r.b, &r);
    } else if (warnings) {
      warnings->push_back("resistor " + r.name +
                          " to ground ignored (leak, not tree branch)");
    }
  }

  std::map<netlist::NetId, int> node_of{{root, 0}};
  std::queue<netlist::NetId> frontier;
  frontier.push(root);
  std::map<const netlist::Resistor*, bool> used;
  while (!frontier.empty()) {
    const netlist::NetId at = frontier.front();
    frontier.pop();
    const auto [lo, hi] = adj.equal_range(at);
    for (auto it = lo; it != hi; ++it) {
      const netlist::Resistor* r = it->second;
      if (used[r]) continue;
      used[r] = true;
      const netlist::NetId next = (r->a == at) ? r->b : r->a;
      if (node_of.count(next)) return std::nullopt;  // resistor loop
      const int parent = node_of.at(at);
      const int id = out.tree.add_node(parent, r->value, 0.0,
                                       nl.net_name(next));
      node_of[next] = id;
      out.net_of_node.push_back(next);
      frontier.push(next);
    }
  }

  // Grounded (or effectively grounded) caps attach as node loads.
  for (const auto& c : nl.capacitors) {
    const bool a_in = node_of.count(c.a) > 0;
    const bool b_in = node_of.count(c.b) > 0;
    if (a_in && b_in) {
      if (warnings)
        warnings->push_back("coupling capacitor " + c.name +
                            " split to ground at both ends");
      out.tree.add_cap(node_of.at(c.a), 0.5 * c.value);
      out.tree.add_cap(node_of.at(c.b), 0.5 * c.value);
    } else if (a_in) {
      out.tree.add_cap(node_of.at(c.a), c.value);
    } else if (b_in) {
      out.tree.add_cap(node_of.at(c.b), c.value);
    }
  }
  return out;
}

}  // namespace qwm::interconnect
