#include "qwm/interconnect/pi_model.h"

#include <cmath>

namespace qwm::interconnect {

PiModel reduce_to_pi(const RcTree& tree) {
  const AdmittanceMoments y = admittance_moments(tree);
  PiModel pi;
  // y2 = -R C_far^2 (negative), y3 = R^2 C_far^3 (positive).
  if (std::abs(y.y2) < 1e-40 || y.y3 <= 1e-60) {
    pi.c_near = y.y1;
    pi.r = 0.0;
    pi.c_far = 0.0;
    return pi;
  }
  const double c_far = y.y2 * y.y2 / y.y3;
  const double r = -y.y3 * y.y3 / (y.y2 * y.y2 * y.y2);
  PiModel out;
  out.c_far = c_far;
  out.r = r;
  out.c_near = y.y1 - c_far;
  if (out.c_near < 0.0) {
    // Heavily distributed load: keep total cap, shift the excess far.
    out.c_far += out.c_near;
    out.c_near = 0.0;
  }
  return out;
}

PiModel wire_pi_model(const device::WireParams& p, double width,
                      double length) {
  return reduce_to_pi(RcTree::from_wire(p, width, length, 10));
}

}  // namespace qwm::interconnect
