// Builds an RcTree from the R/C cards of a parsed netlist, rooted at a
// chosen net — the bridge that lets extracted parasitic decks flow into
// Elmore/AWE/pi analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qwm/interconnect/rc_tree.h"
#include "qwm/netlist/flat.h"

namespace qwm::interconnect {

struct NetlistTree {
  RcTree tree;
  /// Net of each tree node (index aligned with tree nodes; [0] = root).
  std::vector<netlist::NetId> net_of_node;

  /// Tree node for a net, if the net is part of the tree.
  std::optional<int> node_of(netlist::NetId net) const;
};

/// Traverses the resistor graph from `root`, attaching grounded
/// capacitors as node caps. Returns nullopt when the resistive structure
/// reachable from root is not a tree (a resistor loop), or when a
/// resistor touches a non-ground-referenced capacitor network the tree
/// model cannot represent. Floating caps to nets outside the tree are
/// treated as grounded (worst-case loading).
std::optional<NetlistTree> rc_tree_from_netlist(
    const netlist::FlatNetlist& nl, netlist::NetId root,
    std::vector<std::string>* warnings = nullptr);

}  // namespace qwm::interconnect
