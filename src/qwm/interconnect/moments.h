// Circuit moments of RC trees by path tracing.
//
// The k-th voltage moment of each node (coefficients of the transfer
// function's Maclaurin expansion, m0 = 1 for an ideal step at the root)
// is computed with the classic linear-time tree recurrence. Elmore delay
// is -m1; AWE consumes higher moments; the O'Brien/Savarino pi-model
// consumes the driving-point admittance moments y1..y3.
#pragma once

#include <vector>

#include "qwm/interconnect/rc_tree.h"

namespace qwm::interconnect {

/// moments[k][i] = m_k at node i, for k = 0..order (m_0 = 1 everywhere).
std::vector<std::vector<double>> voltage_moments(const RcTree& tree, int order);

/// Elmore delay of every node (= -m_1) [s].
std::vector<double> elmore_delays(const RcTree& tree);

/// First three driving-point admittance moments seen at the root:
/// Y(s) = y[0]*s + y[1]*s^2 + y[2]*s^3 + ...
struct AdmittanceMoments {
  double y1 = 0.0, y2 = 0.0, y3 = 0.0;
};
AdmittanceMoments admittance_moments(const RcTree& tree);

}  // namespace qwm::interconnect
