#include "qwm/interconnect/rc_tree.h"

#include <cassert>

namespace qwm::interconnect {

int RcTree::add_node(int parent, double r, double c, const std::string& name) {
  assert(parent >= 0 && parent < static_cast<int>(nodes_.size()));
  assert(r >= 0.0 && c >= 0.0);
  nodes_.push_back(Node{parent, r, c, name});
  return static_cast<int>(nodes_.size() - 1);
}

std::vector<std::vector<int>> RcTree::children() const {
  std::vector<std::vector<int>> ch(nodes_.size());
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    ch[nodes_[i].parent].push_back(static_cast<int>(i));
  return ch;
}

double RcTree::total_cap() const {
  double c = 0.0;
  for (const auto& n : nodes_) c += n.c;
  return c;
}

RcTree RcTree::uniform_line(double total_r, double total_c, int segments,
                            int* far_node) {
  assert(segments >= 1);
  RcTree t;
  const double rs = total_r / segments;
  const double cs = total_c / segments;
  t.add_cap(0, 0.5 * cs);
  int at = 0;
  for (int k = 0; k < segments; ++k) {
    const double c = (k == segments - 1) ? 0.5 * cs : cs;
    at = t.add_node(at, rs, c);
  }
  if (far_node) *far_node = at;
  return t;
}

RcTree RcTree::from_wire(const device::WireParams& p, double width,
                         double length, int segments, int* far_node) {
  const double r = p.r_sheet * length / width;
  const double c = p.c_area * width * length + p.c_fringe * 2.0 * length;
  return uniform_line(r, c, segments, far_node);
}

}  // namespace qwm::interconnect
