// RC tree model of interconnect.
//
// Node 0 is the root (the driving point); every other node hangs off its
// parent through a resistance and carries a capacitance to ground. This
// is the classic structure Elmore/AWE analysis operates on (paper §II).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qwm/device/process.h"

namespace qwm::interconnect {

class RcTree {
 public:
  struct Node {
    int parent = -1;   ///< -1 for the root
    double r = 0.0;    ///< resistance from the parent [ohm]
    double c = 0.0;    ///< capacitance to ground [F]
    std::string name;
  };

  RcTree() { nodes_.push_back(Node{-1, 0.0, 0.0, "root"}); }

  /// Adds a node under `parent` through resistance r, carrying cap c.
  int add_node(int parent, double r, double c, const std::string& name = "");

  /// Adds cap at an existing node (e.g. a receiver pin load).
  void add_cap(int node, double c) { nodes_[node].c += c; }

  std::size_t size() const { return nodes_.size(); }
  const Node& node(int i) const { return nodes_[i]; }

  /// Children lists (computed on demand).
  std::vector<std::vector<int>> children() const;

  /// Total capacitance of the tree.
  double total_cap() const;

  /// Builds a uniform RC line of `segments` sections with total R and C
  /// (a distributed-wire discretization). Returns the tree and the index
  /// of the far-end node.
  static RcTree uniform_line(double total_r, double total_c, int segments,
                             int* far_node = nullptr);

  /// Uniform line from wire geometry and process wire parameters.
  static RcTree from_wire(const device::WireParams& p, double width,
                          double length, int segments, int* far_node = nullptr);

 private:
  std::vector<Node> nodes_;
};

}  // namespace qwm::interconnect
