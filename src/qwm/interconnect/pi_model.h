// O'Brien/Savarino pi-model reduction.
//
// Reduces an RC tree to the 3-element pi that matches the first three
// driving-point admittance moments — the "macro pi model for the wire"
// the paper builds with AWE machinery before running QWM on the decoder
// tree (paper §V-C, Fig. 10).
//
//   driving point o--+----[ R ]----+
//                    |             |
//                  C_near        C_far
#pragma once

#include "qwm/interconnect/moments.h"
#include "qwm/interconnect/rc_tree.h"

namespace qwm::interconnect {

struct PiModel {
  double c_near = 0.0;  ///< at the driving point [F]
  double r = 0.0;       ///< series resistance [ohm]
  double c_far = 0.0;   ///< behind the resistance [F]

  double total_cap() const { return c_near + c_far; }
};

/// Matches Y(s) = s(C_near + C_far) - s^2 R C_far^2 + s^3 R^2 C_far^3.
/// Degenerate trees (negligible resistance) collapse to a lumped cap.
PiModel reduce_to_pi(const RcTree& tree);

/// Pi-model of a uniform wire (convenience; 10-segment discretization).
PiModel wire_pi_model(const device::WireParams& p, double width,
                      double length);

}  // namespace qwm::interconnect
