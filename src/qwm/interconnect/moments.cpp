#include "qwm/interconnect/moments.h"

#include <cassert>

namespace qwm::interconnect {

std::vector<std::vector<double>> voltage_moments(const RcTree& tree,
                                                 int order) {
  const std::size_t n = tree.size();
  const auto ch = tree.children();
  std::vector<std::vector<double>> m(order + 1, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) m[0][i] = 1.0;

  // Topological orders: children() indices are always > parent (nodes are
  // appended under existing parents), so a simple forward/backward sweep
  // works.
  for (int k = 1; k <= order; ++k) {
    // Subtree "moment current": S(i) = sum_{j in subtree(i)} c_j m_{k-1}(j).
    std::vector<double> s(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      s[i] += tree.node(static_cast<int>(i)).c * m[k - 1][i];
      if (tree.node(static_cast<int>(i)).parent >= 0)
        s[tree.node(static_cast<int>(i)).parent] += s[i];
    }
    m[k][0] = 0.0;  // ideal source at the root
    for (std::size_t i = 1; i < n; ++i) {
      const auto& nd = tree.node(static_cast<int>(i));
      m[k][i] = m[k][nd.parent] - nd.r * s[i];
    }
  }
  return m;
}

std::vector<double> elmore_delays(const RcTree& tree) {
  const auto m = voltage_moments(tree, 1);
  std::vector<double> d(tree.size());
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = -m[1][i];
  return d;
}

AdmittanceMoments admittance_moments(const RcTree& tree) {
  const auto m = voltage_moments(tree, 2);
  AdmittanceMoments y;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const double c = tree.node(static_cast<int>(i)).c;
    y.y1 += c;               // c_i * m0
    y.y2 += c * m[1][i];
    y.y3 += c * m[2][i];
  }
  return y;
}

}  // namespace qwm::interconnect
