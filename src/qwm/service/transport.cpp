#include "qwm/service/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <istream>
#include <ostream>

#include "qwm/service/protocol.h"

namespace qwm::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Lines the protocol ignores: empty/whitespace or '#' comments.
bool ignorable(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

/// One client session: either a connected socket (fd >= 0) or a stream
/// pair. write_line is serialized per connection; with the strict
/// request/response discipline there is at most one response in flight.
struct LineTransport::Conn {
  int fd = -1;
  std::ostream* out = nullptr;
  std::mutex write_mu;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& s) {
    std::lock_guard lock(write_mu);
    if (out) {
      (*out) << s << '\n';
      out->flush();
      return;
    }
    std::string msg = s;
    msg += '\n';
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n =
          ::send(fd, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer went away; drop the response
      off += static_cast<std::size_t>(n);
    }
  }

  /// Unblocks a reader parked in recv() on this connection.
  void shutdown_io() {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
};

/// One admitted request. The transport's reader thread blocks on `done`
/// until a worker has written the response, which keeps responses in
/// request order per connection.
struct LineTransport::Job {
  std::shared_ptr<Conn> conn;
  std::string line;
  Clock::time_point enqueued;
  std::promise<void> done;
};

LineTransport::LineTransport(TransportOptions opt)
    : opt_(opt), pool_(opt.threads) {}

LineTransport::~LineTransport() { request_shutdown(); }

void LineTransport::deliver(const std::shared_ptr<Conn>& conn,
                            const std::string& resp) {
  std::string out = resp;
  double mag = 0.0;
  // Ladder order mirrors a real failing process: a stalled reply can
  // still arrive torn, and a dropped connection trumps both.
  if (fault_hook_.fire(support::FaultSite::kStallReply, &mag) && mag > 0.0) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.stalled_replies;
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(mag));
  }
  if (fault_hook_.fire(support::FaultSite::kCorruptReply)) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.corrupted_replies;
    }
    out = out.substr(0, out.size() / 2) + "\x01TORN";
  }
  if (fault_hook_.fire(support::FaultSite::kDropConnection)) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.dropped_connections;
    }
    conn->shutdown_io();
    return;
  }
  conn->write_line(out);
}

void LineTransport::submit_and_wait(const std::shared_ptr<Conn>& conn,
                                    const std::string& line) {
  auto job = std::make_shared<Job>();
  job->conn = conn;
  job->line = line;
  job->enqueued = Clock::now();
  std::future<void> done = job->done.get_future();
  bool shed_busy = false;
  {
    std::lock_guard lock(queue_mu_);
    if (queue_closed_) {
      deliver(conn, err_line("SHUTDOWN", "server stopping"));
      return;
    }
    if (static_cast<int>(queue_.size()) >= opt_.queue_capacity) {
      shed_busy = true;
    } else {
      queue_.push_back(std::move(job));
    }
  }
  if (shed_busy) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.busy_rejections;
    }
    deliver(conn, err_line("BUSY", "admission queue full"));
    return;
  }
  queue_cv_.notify_one();
  done.wait();
}

void LineTransport::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const double waited_ms = ms_between(job->enqueued, Clock::now());
    std::string resp;
    if (opt_.deadline_ms > 0.0 && waited_ms > opt_.deadline_ms) {
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.deadline_expirations;
      }
      resp = err_line("DEADLINE", "request waited " + format_double(waited_ms) +
                                      " ms in queue");
    } else {
      resp = handler_ ? handler_(job->line) : err_line("INTERNAL", "no handler");
    }
    if (!resp.empty()) deliver(job->conn, resp);
    job->done.set_value();
  }
}

void LineTransport::run_workers() {
  const std::size_t lanes = static_cast<std::size_t>(pool_.thread_count());
  pool_.parallel_for(lanes, [this](std::size_t) { worker_loop(); });
}

bool LineTransport::try_fast_path(const std::shared_ptr<Conn>& conn,
                                  const std::string& line) {
  if (!fast_handler_) return false;
  std::string resp;
  if (!fast_handler_(line, &resp)) return false;
  if (!resp.empty()) deliver(conn, resp);
  return true;
}

int LineTransport::serve_stream(std::istream& in, std::ostream& out) {
  auto conn = std::make_shared<Conn>();
  conn->out = &out;
  // The worker lanes run on the pool (pumped from this helper thread);
  // the calling thread is the transport reader.
  std::thread pump([this] { run_workers(); });
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (ignorable(line)) continue;
    if (try_fast_path(conn, line)) continue;
    submit_and_wait(conn, line);
  }
  request_shutdown();
  pump.join();
  return 0;
}

bool LineTransport::listen(int port) {
  listen_error_.clear();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    listen_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    listen_error_ = "bind 127.0.0.1:" + std::to_string(port) + ": " +
                    std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    listen_error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return true;
}

void LineTransport::serve() {
  std::thread accept_thread([this] {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down (or hard error): stop accepting
      }
      if (shutdown_requested()) {
        ::close(fd);
        return;
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      std::lock_guard lock(conns_mu_);
      conns_.push_back(conn);
      readers_.emplace_back([this, conn] { reader_loop(conn); });
    }
  });
  run_workers();  // blocks until shutdown closes and drains the queue
  // All responses are written; now unblock readers parked in recv().
  {
    std::lock_guard lock(conns_mu_);
    for (auto& w : conns_)
      if (auto c = w.lock()) c->shutdown_io();
  }
  accept_thread.join();
  // The accept thread (sole mutator of readers_) has exited.
  for (auto& t : readers_) t.join();
  readers_.clear();
  {
    std::lock_guard lock(conns_mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void LineTransport::reader_loop(std::shared_ptr<Conn> conn) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (ignorable(line)) continue;
      if (try_fast_path(conn, line)) continue;
      submit_and_wait(conn, line);
      if (shutdown_requested()) return;
    }
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;  // EOF, error, or shutdown_io()
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineTransport::request_shutdown() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  // Unblock accept(); connection fds are shut down by serve() after the
  // workers have drained every pending response.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

TransportStats LineTransport::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace qwm::service
