// Fleet — the shard router's control plane and data plane.
//
// A Fleet fronts N shard endpoints (each a qwm_serve --shard k/N
// process or an in-process Server) plus optional full-design read
// replicas, and speaks the same newline protocol as a single server:
//
//  * LOAD fans out to every shard and replica, then runs the one-pass
//    boundary-arrival exchange: shards are swept in shard order, each
//    shard's BOUNDARY exports injected into its consumers via SETARR
//    (text passed through verbatim — %.17g survives bit-exactly) and
//    re-propagated with UPDATE. Level-major sharding makes every
//    cross-shard edge point forward, so one sweep converges.
//  * ARRIVAL routes to the owning shard (per the deterministic
//    ShardMap); a slow owner is hedged against a replica after
//    hedge_ms; a down owner's nets are answered from a replica with the
//    reply re-tagged OK DEGRADED — exact values, honestly labelled.
//  * SLACK / CORNERS need whole-graph context and route to replicas.
//  * CRITPATH is scatter-gather: every healthy shard reports its local
//    worst path; the global worst is stitched across shard boundaries
//    by re-querying `CRITPATH <net> <edge>` on each upstream owner.
//  * RESIZE / UPDATE run under the fleet-wide epoch and are
//    consistent-or-refused: while any shard is down, mutations answer
//    ERR SHARD_DOWN instead of tearing the fleet's state.
//
// Failover ladder (driven by supervise(), which the router calls
// periodically and tests call deterministically): HEALTH probes with
// liveness deadlines mark silent shards suspect then down; a newly-down
// shard's last-known boundary arrivals are re-injected into its
// consumers with degraded=1, so every downstream net answers through
// the engine's sticky Arrival::degraded path; the restart hook brings
// the process back; re-warm replays LOAD + the owned slice of the
// mutation log + a fresh boundary sweep (degraded flags clear), and the
// shard returns to healthy with bit-identical answers at the same
// fleet epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "qwm/service/health.h"
#include "qwm/service/protocol.h"
#include "qwm/service/shard_client.h"
#include "qwm/support/retry.h"

namespace qwm::service {

struct FleetOptions {
  /// Per-call deadline for queries and boundary-exchange traffic.
  double call_timeout_ms = 5000.0;
  /// Deadline for the heavy verbs (LOAD, UPDATE) — full analyses.
  double load_timeout_ms = 600000.0;
  /// > 0: a read that hasn't answered within this is declared slow and
  /// hedged against a replica (bounded: one hedge per request).
  double hedge_ms = 0.0;
  /// Transient-error retry (BUSY/DEADLINE + transport failures),
  /// jittered exponential backoff from support/retry.h.
  support::RetryPolicy retry;
  HealthPolicy health;
  /// Seed of the backoff-jitter stream (decorrelates concurrent fleets).
  std::uint64_t seed = 0x5eedf1ee7ULL;
};

struct FleetStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedged_reads = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t degraded_replies = 0;
  std::uint64_t refused_mutations = 0;
  std::uint64_t failovers = 0;         ///< healthy->down transitions
  std::uint64_t restarts = 0;          ///< successful re-warms
  std::uint64_t refused_restarts = 0;  ///< restart hook returned nothing
  std::uint64_t supervise_passes = 0;
};

class Fleet {
 public:
  /// Brings shard `shard` back after a crash (fork/exec a new process,
  /// or construct a fresh in-process server) and returns its endpoint;
  /// nullptr = restart refused/failed (retried on the next supervise).
  using RestartFn = std::function<std::unique_ptr<ShardEndpoint>(int shard)>;

  Fleet(FleetOptions opt, std::vector<std::unique_ptr<ShardEndpoint>> shards,
        std::vector<std::unique_ptr<ShardEndpoint>> replicas);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  void set_restart_fn(RestartFn fn) { restart_ = std::move(fn); }

  /// Routes one request line and returns the one-line reply, with the
  /// epoch field rewritten to the fleet epoch. Thread-safe.
  std::string handle_line(const std::string& line);

  /// Router HEALTH reply (fast path — short tracker lock only, never
  /// the fleet lock).
  std::string health_line() const;

  /// One supervision pass: probe every shard, degrade the cones of
  /// newly-down shards, restart + re-warm down shards. Returns a
  /// summary line for logs. Serialized with mutations.
  std::string supervise();

  /// Broadcasts SHUTDOWN to every shard and replica (best effort).
  void broadcast_shutdown();

  bool loaded() const;
  std::uint64_t epoch() const;
  int shard_count() const { return static_cast<int>(shards_.size()); }
  int replica_count() const { return static_cast<int>(replicas_.size()); }
  ShardState shard_state(int shard) const { return health_.state(shard); }
  FleetStats stats() const;

  struct Routing;  ///< full-design name/ownership tables (fleet.cpp)

 private:
  struct CallResult {
    bool ok = false;       ///< transport round trip completed sanely
    std::string response;  ///< only meaningful when ok
  };

  // Endpoint plumbing. Shard indices [0, shards); replica index r is
  // addressed separately. All honor per-call timeouts; shard calls feed
  // the health tracker.
  CallResult call_shard(int shard, const std::string& line, double timeout_ms);
  CallResult call_replica(int replica, const std::string& line,
                          double timeout_ms);
  /// Retry wrapper: transport failures and retryable codes retry with
  /// jittered backoff per opt_.retry.
  CallResult call_shard_retry(int shard, const std::string& line,
                              double timeout_ms);
  /// First live replica that answers; !ok when none do.
  CallResult any_replica(const std::string& line, double timeout_ms);
  /// Health-ladder bookkeeping for one failed shard call (queues the
  /// failover-marking work when the shard just went down).
  void on_shard_failure(int shard);

  // Verb handlers (shared or exclusive lock noted in fleet.cpp).
  std::string do_load(const std::string& path);
  std::string do_arrival(const std::string& line, const std::string& net);
  std::string do_replica_read(const std::string& line);
  std::string do_critpath(const Request& r);
  std::string do_resize(const std::string& line, int stage);
  std::string do_update(const std::string& line);
  std::string do_stats();

  /// The one-pass forward boundary exchange (see header comment). Sums
  /// the shards' UPDATE evals and keeps the raw text of the maximum
  /// worst= field. Returns false when a required shard call failed.
  bool sweep_boundaries(std::uint64_t* evals, std::string* worst_raw,
                        std::string* error);
  /// Parses one BOUNDARY reply, refreshes the boundary cache, and
  /// SETARRs every entry into its consumer shards (degraded flags forced
  /// on when `force_degraded`).
  bool inject_entries(const std::string& boundary_resp, bool force_degraded,
                      std::string* error);
  /// Re-injects shard k's last-known exports into its consumers with
  /// degraded=1 and re-propagates — the detect->degrade rung.
  void inject_degraded(int shard);
  /// LOAD + owned-mutation replay for a restarted shard; the caller's
  /// fleet-wide sweep then resyncs boundaries and clears degradation.
  bool rewarm(int shard, std::string* error);

  /// Stamps the fleet epoch into an OK reply and counts degradation.
  std::string stamp(std::string response);

  double jittered_backoff(int attempt);

  /// Readers pass through gate_ before taking mu_ shared; writers hold
  /// gate_ while waiting (same writer-fairness idiom as DesignDb).
  std::shared_lock<std::shared_mutex> reader_lock() const;
  std::unique_lock<std::shared_mutex> writer_lock();

  FleetOptions opt_;
  RestartFn restart_;

  mutable std::mutex gate_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<ShardEndpoint>> shards_;
  std::vector<std::unique_ptr<ShardEndpoint>> replicas_;
  /// Replica still serving (a replica that misses a mutation is dropped
  /// from rotation rather than left to answer from a stale design).
  std::vector<char> replica_live_;
  std::unique_ptr<Routing> routing_;
  std::string deck_;                       ///< last LOAD source (re-warm)
  std::vector<std::string> mutation_log_;  ///< RESIZE/UPDATE since LOAD
  std::uint64_t epoch_ = 0;

  HealthTracker health_;
  /// Newly-down shards whose consumers still need degraded marking.
  std::mutex pending_mu_;
  std::set<int> pending_failover_;
  /// Shards whose cones carry the degraded tag (cleared on re-warm);
  /// guarded by the writer lock (supervise-only).
  std::set<int> degraded_marked_;

  /// Lock-free mirrors for the HEALTH fast path.
  std::atomic<std::uint64_t> epoch_mirror_{0};
  std::atomic<bool> loaded_mirror_{false};

  mutable std::mutex stats_mu_;
  FleetStats stats_;
  std::uint64_t rng_;
};

}  // namespace qwm::service
