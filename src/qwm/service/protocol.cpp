#include "qwm/service/protocol.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "qwm/netlist/parser.h"

namespace qwm::service {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool parse_int(const std::string& tok, int* out) {
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

// strtod, not parse_spice_number: SETARR operands are %.17g round trips
// of engine doubles (including negatives and exponents), never suffixed
// SPICE literals, and must re-parse to the exact bits.
bool parse_exact_double(const std::string& tok, double* out) {
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end != tok.c_str() && *end == '\0';
}

bool parse_bool01(const std::string& tok, bool* out) {
  if (tok == "0") { *out = false; return true; }
  if (tok == "1") { *out = true; return true; }
  return false;
}

ParsedRequest bad(const std::string& code, const std::string& msg) {
  ParsedRequest p;
  p.code = code;
  p.error = msg;
  return p;
}

}  // namespace

const char* verb_name(Verb v) {
  switch (v) {
    case Verb::kLoad: return "load";
    case Verb::kArrival: return "arrival";
    case Verb::kCorners: return "corners";
    case Verb::kSlack: return "slack";
    case Verb::kCritPath: return "critpath";
    case Verb::kResize: return "resize";
    case Verb::kUpdate: return "update";
    case Verb::kStats: return "stats";
    case Verb::kHealth: return "health";
    case Verb::kBoundary: return "boundary";
    case Verb::kSetArr: return "setarr";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

ParsedRequest parse_request(const std::string& line) {
  const std::vector<std::string> t = split_ws(line);
  if (t.empty() || t[0][0] == '#') return ParsedRequest{};  // skip silently

  ParsedRequest p;
  const std::string verb = lower(t[0]);
  Request& r = p.request;
  if (verb == "load") {
    if (t.size() != 2) return bad("ARG", "usage: LOAD <deck.sp>");
    r.verb = Verb::kLoad;
    r.path = t[1];
  } else if (verb == "arrival") {
    if (t.size() != 2) return bad("ARG", "usage: ARRIVAL <net>");
    r.verb = Verb::kArrival;
    r.net = lower(t[1]);
  } else if (verb == "corners") {
    if (t.size() != 2 && t.size() != 3)
      return bad("ARG", "usage: CORNERS <net> [period]");
    r.verb = Verb::kCorners;
    r.net = lower(t[1]);
    if (t.size() == 3 &&
        (!netlist::parse_spice_number(t[2], &r.period) || r.period <= 0.0))
      return bad("ARG", "bad period: " + t[2]);
  } else if (verb == "slack") {
    if (t.size() != 3) return bad("ARG", "usage: SLACK <net> <period>");
    r.verb = Verb::kSlack;
    r.net = lower(t[1]);
    if (!netlist::parse_spice_number(t[2], &r.period) || r.period <= 0.0)
      return bad("ARG", "bad period: " + t[2]);
  } else if (verb == "critpath") {
    if (t.size() > 3) return bad("ARG", "usage: CRITPATH [net [R|F]]");
    r.verb = Verb::kCritPath;
    if (t.size() >= 2) r.net = lower(t[1]);
    if (t.size() == 3) {
      const std::string e = lower(t[2]);
      if (e != "r" && e != "f") return bad("ARG", "bad edge (want R|F): " + t[2]);
      r.path_edge = e == "r" ? 'R' : 'F';
    }
  } else if (verb == "resize") {
    if (t.size() != 4) return bad("ARG", "usage: RESIZE <stage> <edge> <width>");
    r.verb = Verb::kResize;
    if (!parse_int(t[1], &r.stage)) return bad("ARG", "bad stage index: " + t[1]);
    if (!parse_int(t[2], &r.edge)) return bad("ARG", "bad edge index: " + t[2]);
    if (!netlist::parse_spice_number(t[3], &r.width) || r.width <= 0.0)
      return bad("ARG", "bad width: " + t[3]);
  } else if (verb == "update") {
    if (t.size() != 1) return bad("ARG", "usage: UPDATE");
    r.verb = Verb::kUpdate;
  } else if (verb == "stats") {
    if (t.size() != 1) return bad("ARG", "usage: STATS");
    r.verb = Verb::kStats;
  } else if (verb == "health") {
    if (t.size() != 1) return bad("ARG", "usage: HEALTH");
    r.verb = Verb::kHealth;
  } else if (verb == "boundary") {
    if (t.size() != 1) return bad("ARG", "usage: BOUNDARY");
    r.verb = Verb::kBoundary;
  } else if (verb == "setarr") {
    if (t.size() != 10)
      return bad("ARG",
                 "usage: SETARR <net> <rv> <rise> <rslew> <rdeg> <fv> "
                 "<fall> <fslew> <fdeg>");
    r.verb = Verb::kSetArr;
    r.net = lower(t[1]);
    if (!parse_bool01(t[2], &r.rise.valid))
      return bad("ARG", "bad rise-valid flag: " + t[2]);
    if (!parse_exact_double(t[3], &r.rise.time))
      return bad("ARG", "bad rise time: " + t[3]);
    if (!parse_exact_double(t[4], &r.rise.slew))
      return bad("ARG", "bad rise slew: " + t[4]);
    if (!parse_bool01(t[5], &r.rise.degraded))
      return bad("ARG", "bad rise-degraded flag: " + t[5]);
    if (!parse_bool01(t[6], &r.fall.valid))
      return bad("ARG", "bad fall-valid flag: " + t[6]);
    if (!parse_exact_double(t[7], &r.fall.time))
      return bad("ARG", "bad fall time: " + t[7]);
    if (!parse_exact_double(t[8], &r.fall.slew))
      return bad("ARG", "bad fall slew: " + t[8]);
    if (!parse_bool01(t[9], &r.fall.degraded))
      return bad("ARG", "bad fall-degraded flag: " + t[9]);
  } else if (verb == "shutdown") {
    if (t.size() != 1) return bad("ARG", "usage: SHUTDOWN");
    r.verb = Verb::kShutdown;
  } else {
    return bad("BADCMD", "unknown verb: " + t[0]);
  }
  p.ok = true;
  return p;
}

std::string ok_line(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string err_line(const std::string& code, const std::string& message) {
  std::string out = "ERR " + code;
  if (!message.empty()) {
    out += " ";
    // The protocol is newline-delimited; fold any embedded newlines.
    for (char c : message) out += (c == '\n' || c == '\r') ? ' ' : c;
  }
  return out;
}

std::string ok_degraded_line(const std::string& payload) {
  return payload.empty() ? "OK DEGRADED" : "OK DEGRADED " + payload;
}

bool is_ok(const std::string& response) {
  return response == "OK" || response.rfind("OK ", 0) == 0;
}

bool is_degraded(const std::string& response) {
  return response == "OK DEGRADED" || response.rfind("OK DEGRADED ", 0) == 0;
}

bool is_err(const std::string& response, const std::string& code) {
  if (response.rfind("ERR ", 0) != 0) return false;
  if (code.empty()) return true;
  const std::string want = "ERR " + code;
  return response == want || response.rfind(want + " ", 0) == 0;
}

std::string err_code(const std::string& response) {
  if (response.rfind("ERR ", 0) != 0) return "";
  const std::size_t begin = 4;
  const std::size_t end = response.find(' ', begin);
  return response.substr(begin, end == std::string::npos ? std::string::npos
                                                         : end - begin);
}

bool retryable_code(const std::string& code) {
  return code == "BUSY" || code == "DEADLINE" || code == "DEGRADED" ||
         code == "SHARD_DOWN";
}

std::string degrade_response(const std::string& response) {
  if (!is_ok(response) || is_degraded(response)) return response;
  return response == "OK" ? "OK DEGRADED"
                          : "OK DEGRADED " + response.substr(3);
}

std::string with_field(const std::string& response, const std::string& key,
                       const std::string& value) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while ((pos = response.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || response[pos - 1] == ' ') {
      const std::size_t vbegin = pos + needle.size();
      const std::size_t vend = response.find(' ', vbegin);
      std::string out = response.substr(0, vbegin) + value;
      if (vend != std::string::npos) out += response.substr(vend);
      return out;
    }
    pos += needle.size();
  }
  return response + " " + needle + value;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string response_field(const std::string& response, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while ((pos = response.find(needle, pos)) != std::string::npos) {
    // Key must start a token (preceded by a space or line start).
    if (pos == 0 || response[pos - 1] == ' ') {
      const std::size_t vbegin = pos + needle.size();
      const std::size_t vend = response.find(' ', vbegin);
      return response.substr(vbegin, vend == std::string::npos
                                         ? std::string::npos
                                         : vend - vbegin);
    }
    pos += needle.size();
  }
  return "";
}

}  // namespace qwm::service
