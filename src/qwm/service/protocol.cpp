#include "qwm/service/protocol.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "qwm/netlist/parser.h"

namespace qwm::service {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool parse_int(const std::string& tok, int* out) {
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

ParsedRequest bad(const std::string& code, const std::string& msg) {
  ParsedRequest p;
  p.code = code;
  p.error = msg;
  return p;
}

}  // namespace

const char* verb_name(Verb v) {
  switch (v) {
    case Verb::kLoad: return "load";
    case Verb::kArrival: return "arrival";
    case Verb::kCorners: return "corners";
    case Verb::kSlack: return "slack";
    case Verb::kCritPath: return "critpath";
    case Verb::kResize: return "resize";
    case Verb::kUpdate: return "update";
    case Verb::kStats: return "stats";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

ParsedRequest parse_request(const std::string& line) {
  const std::vector<std::string> t = split_ws(line);
  if (t.empty() || t[0][0] == '#') return ParsedRequest{};  // skip silently

  ParsedRequest p;
  const std::string verb = lower(t[0]);
  Request& r = p.request;
  if (verb == "load") {
    if (t.size() != 2) return bad("ARG", "usage: LOAD <deck.sp>");
    r.verb = Verb::kLoad;
    r.path = t[1];
  } else if (verb == "arrival") {
    if (t.size() != 2) return bad("ARG", "usage: ARRIVAL <net>");
    r.verb = Verb::kArrival;
    r.net = lower(t[1]);
  } else if (verb == "corners") {
    if (t.size() != 2 && t.size() != 3)
      return bad("ARG", "usage: CORNERS <net> [period]");
    r.verb = Verb::kCorners;
    r.net = lower(t[1]);
    if (t.size() == 3 &&
        (!netlist::parse_spice_number(t[2], &r.period) || r.period <= 0.0))
      return bad("ARG", "bad period: " + t[2]);
  } else if (verb == "slack") {
    if (t.size() != 3) return bad("ARG", "usage: SLACK <net> <period>");
    r.verb = Verb::kSlack;
    r.net = lower(t[1]);
    if (!netlist::parse_spice_number(t[2], &r.period) || r.period <= 0.0)
      return bad("ARG", "bad period: " + t[2]);
  } else if (verb == "critpath") {
    if (t.size() != 1) return bad("ARG", "usage: CRITPATH");
    r.verb = Verb::kCritPath;
  } else if (verb == "resize") {
    if (t.size() != 4) return bad("ARG", "usage: RESIZE <stage> <edge> <width>");
    r.verb = Verb::kResize;
    if (!parse_int(t[1], &r.stage)) return bad("ARG", "bad stage index: " + t[1]);
    if (!parse_int(t[2], &r.edge)) return bad("ARG", "bad edge index: " + t[2]);
    if (!netlist::parse_spice_number(t[3], &r.width) || r.width <= 0.0)
      return bad("ARG", "bad width: " + t[3]);
  } else if (verb == "update") {
    if (t.size() != 1) return bad("ARG", "usage: UPDATE");
    r.verb = Verb::kUpdate;
  } else if (verb == "stats") {
    if (t.size() != 1) return bad("ARG", "usage: STATS");
    r.verb = Verb::kStats;
  } else if (verb == "shutdown") {
    if (t.size() != 1) return bad("ARG", "usage: SHUTDOWN");
    r.verb = Verb::kShutdown;
  } else {
    return bad("BADCMD", "unknown verb: " + t[0]);
  }
  p.ok = true;
  return p;
}

std::string ok_line(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string err_line(const std::string& code, const std::string& message) {
  std::string out = "ERR " + code;
  if (!message.empty()) {
    out += " ";
    // The protocol is newline-delimited; fold any embedded newlines.
    for (char c : message) out += (c == '\n' || c == '\r') ? ' ' : c;
  }
  return out;
}

std::string ok_degraded_line(const std::string& payload) {
  return payload.empty() ? "OK DEGRADED" : "OK DEGRADED " + payload;
}

bool is_ok(const std::string& response) {
  return response == "OK" || response.rfind("OK ", 0) == 0;
}

bool is_degraded(const std::string& response) {
  return response == "OK DEGRADED" || response.rfind("OK DEGRADED ", 0) == 0;
}

bool is_err(const std::string& response, const std::string& code) {
  if (response.rfind("ERR ", 0) != 0) return false;
  if (code.empty()) return true;
  const std::string want = "ERR " + code;
  return response == want || response.rfind(want + " ", 0) == 0;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string response_field(const std::string& response, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while ((pos = response.find(needle, pos)) != std::string::npos) {
    // Key must start a token (preceded by a space or line start).
    if (pos == 0 || response[pos - 1] == ' ') {
      const std::size_t vbegin = pos + needle.size();
      const std::size_t vend = response.find(' ', vbegin);
      return response.substr(vbegin, vend == std::string::npos
                                         ? std::string::npos
                                         : vend - vbegin);
    }
    pos += needle.size();
  }
  return "";
}

}  // namespace qwm::service
