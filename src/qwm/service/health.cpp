#include "qwm/service/health.h"

#include <algorithm>

namespace qwm::service {

const char* shard_state_name(ShardState s) {
  switch (s) {
    case ShardState::healthy: return "healthy";
    case ShardState::suspect: return "suspect";
    case ShardState::down: return "down";
    case ShardState::warming: return "warming";
  }
  return "?";
}

HealthTracker::HealthTracker(int shard_count, HealthPolicy policy)
    : policy_(policy),
      state_(static_cast<std::size_t>(std::max(0, shard_count)),
             ShardState::healthy),
      consecutive_failures_(static_cast<std::size_t>(std::max(0, shard_count)),
                            0) {}

void HealthTracker::note_success(int shard) {
  std::lock_guard lock(mu_);
  const auto i = static_cast<std::size_t>(shard);
  consecutive_failures_[i] = 0;
  // Success clears suspicion, but never resurrects a down/warming shard —
  // only the supervisor's re-warm may promote those.
  if (state_[i] == ShardState::suspect) state_[i] = ShardState::healthy;
}

ShardState HealthTracker::note_failure(int shard) {
  std::lock_guard lock(mu_);
  const auto i = static_cast<std::size_t>(shard);
  const int fails = ++consecutive_failures_[i];
  if (state_[i] == ShardState::healthy && fails >= policy_.suspect_after)
    state_[i] = ShardState::suspect;
  if (state_[i] == ShardState::suspect && fails >= policy_.down_after)
    state_[i] = ShardState::down;
  return state_[i];
}

void HealthTracker::mark(int shard, ShardState s) {
  std::lock_guard lock(mu_);
  const auto i = static_cast<std::size_t>(shard);
  state_[i] = s;
  if (s == ShardState::healthy) consecutive_failures_[i] = 0;
}

ShardState HealthTracker::state(int shard) const {
  std::lock_guard lock(mu_);
  return state_[static_cast<std::size_t>(shard)];
}

bool HealthTracker::all_healthy() const {
  std::lock_guard lock(mu_);
  return std::all_of(state_.begin(), state_.end(), [](ShardState s) {
    return s == ShardState::healthy;
  });
}

std::vector<int> HealthTracker::down_shards() const {
  std::lock_guard lock(mu_);
  std::vector<int> out;
  for (std::size_t i = 0; i < state_.size(); ++i)
    if (state_[i] == ShardState::down) out.push_back(static_cast<int>(i));
  return out;
}

std::vector<ShardState> HealthTracker::snapshot() const {
  std::lock_guard lock(mu_);
  return state_;
}

}  // namespace qwm::service
