// Per-shard liveness tracking for the serving fleet.
//
// The router drives one HealthTracker: every call outcome (including
// HEALTH heartbeat probes) is reported as success or failure, and
// consecutive failures walk a shard down the ladder healthy -> suspect
// -> down. A down shard stays down until the supervisor re-warms it
// (mark(warming) during replay, mark(healthy) on completion); a single
// success resets a merely-suspect shard, so one dropped packet does not
// trigger failover.
#pragma once

#include <mutex>
#include <vector>

namespace qwm::service {

enum class ShardState { healthy, suspect, down, warming };

const char* shard_state_name(ShardState s);

struct HealthPolicy {
  /// HEALTH probe deadline: a shard that cannot answer a queue-bypassing
  /// probe within this is failing, not busy.
  double probe_timeout_ms = 250.0;
  /// Consecutive failures before a healthy shard turns suspect.
  int suspect_after = 1;
  /// Consecutive failures before a shard is declared down (failover).
  int down_after = 2;
};

class HealthTracker {
 public:
  explicit HealthTracker(int shard_count, HealthPolicy policy = {});

  /// Reports a call outcome. note_failure returns the state after the
  /// transition, so the caller can react to a fresh `down` exactly once.
  void note_success(int shard);
  ShardState note_failure(int shard);

  /// Supervisor transitions (warming during re-warm, healthy after).
  void mark(int shard, ShardState s);

  ShardState state(int shard) const;
  bool all_healthy() const;
  /// Shards currently down (ascending) — the supervisor's work list.
  std::vector<int> down_shards() const;
  std::vector<ShardState> snapshot() const;

  const HealthPolicy& policy() const { return policy_; }

 private:
  HealthPolicy policy_;
  mutable std::mutex mu_;
  std::vector<ShardState> state_;
  std::vector<int> consecutive_failures_;
};

}  // namespace qwm::service
