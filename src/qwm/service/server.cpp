#include "qwm/service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include "qwm/support/fault_injection.h"

namespace qwm::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Lines the protocol ignores: empty/whitespace or '#' comments.
bool ignorable(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

/// One client session: either a connected socket (fd >= 0) or a stream
/// pair. write_line is serialized per connection; with the strict
/// request/response discipline there is at most one response in flight.
struct Server::Conn {
  int fd = -1;
  std::ostream* out = nullptr;
  std::mutex write_mu;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& s) {
    std::lock_guard lock(write_mu);
    if (out) {
      (*out) << s << '\n';
      out->flush();
      return;
    }
    std::string msg = s;
    msg += '\n';
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n =
          ::send(fd, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer went away; drop the response
      off += static_cast<std::size_t>(n);
    }
  }

  /// Unblocks a reader parked in recv() on this connection.
  void shutdown_io() {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
};

/// One admitted request. The transport's reader thread blocks on `done`
/// until a worker has written the response, which keeps responses in
/// request order per connection.
struct Server::Job {
  std::shared_ptr<Conn> conn;
  std::string line;
  Clock::time_point enqueued;
  std::promise<void> done;
};

Server::Server(ServerOptions opt) : opt_(opt), db_(opt.db), pool_(opt.threads) {}

Server::~Server() {
  request_shutdown();
}

void Server::note_result(Verb v, double ms, bool ok) {
  std::lock_guard lock(stats_mu_);
  VerbStats& s = stats_.verb[static_cast<int>(v)];
  ++s.requests;
  if (!ok) ++s.errors;
  s.total_ms += ms;
  if (ms > s.max_ms) s.max_ms = ms;
}

std::string Server::handle_line(const std::string& line) {
  std::string text = line;
  // Injected transport corruption: drive the malformed-frame path
  // deterministically (the frame arrives garbled, not the parser broken).
  if (support::fire_fault(support::FaultSite::kMalformedFrame))
    text.insert(0, "\x01\x02 ");
  const ParsedRequest p = parse_request(text);
  if (!p.ok) {
    if (p.code.empty()) return "";  // blank / comment
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.malformed;
    }
    return err_line(p.code, p.error);
  }
  const Request& r = p.request;
  const auto t0 = Clock::now();
  // Injected latency: the request stalls for `magnitude` ms before the
  // engine sees it — the knob the solve-deadline tests turn.
  double slow_ms = 0.0;
  if (support::fire_fault(support::FaultSite::kSlowRequest, &slow_ms) &&
      slow_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slow_ms));
  // Injected hard failure: the request dies before execution.
  if (support::fire_fault(support::FaultSite::kFailRequest)) {
    note_result(r.verb, ms_between(t0, Clock::now()), false);
    return err_line("INJECTED", "fault injection: request failed");
  }
  std::string resp;
  std::ostringstream os;
  switch (r.verb) {
    case Verb::kLoad: {
      const LoadReply reply = db_.load_file(r.path);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "epoch=" << reply.epoch << " session=" << reply.session
         << " stages=" << reply.stages << " nets=" << reply.nets
         << " evals=" << reply.evals << " warnings=" << reply.warnings.size()
         << " worst=" << format_double(reply.worst);
      resp = ok_line(os.str());
      break;
    }
    case Verb::kArrival: {
      const ArrivalReply reply = db_.arrival(r.net);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      const auto& t = reply.timing;
      os << "net=" << r.net << " epoch=" << reply.epoch
         << " rise_valid=" << (t.rise.valid() ? 1 : 0)
         << " rise=" << format_double(t.rise.time)
         << " rise_slew=" << format_double(t.rise.slew)
         << " fall_valid=" << (t.fall.valid() ? 1 : 0)
         << " fall=" << format_double(t.fall.time)
         << " fall_slew=" << format_double(t.fall.slew)
         << " rise_degraded=" << (t.rise.degraded ? 1 : 0)
         << " fall_degraded=" << (t.fall.degraded ? 1 : 0);
      resp = (t.rise.degraded || t.fall.degraded) ? ok_degraded_line(os.str())
                                                  : ok_line(os.str());
      break;
    }
    case Verb::kCorners: {
      const CornersReply reply = db_.corners(r.net, r.period);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "net=" << r.net << " epoch=" << reply.epoch
         << " corners=" << reply.corners.size();
      for (const auto& ct : reply.corners) {
        const char* cn = device::corner_name(ct.corner);
        os << " " << cn << "_rise_valid=" << (ct.timing.rise.valid() ? 1 : 0)
           << " " << cn << "_rise=" << format_double(ct.timing.rise.time)
           << " " << cn << "_fall_valid=" << (ct.timing.fall.valid() ? 1 : 0)
           << " " << cn << "_fall=" << format_double(ct.timing.fall.time);
      }
      if (r.period > 0.0) {
        os << " valid=" << (reply.setup_hold.valid ? 1 : 0)
           << " latest=" << format_double(reply.setup_hold.latest)
           << " earliest=" << format_double(reply.setup_hold.earliest)
           << " setup_slack=" << format_double(reply.setup_hold.setup_slack)
           << " hold_slack=" << format_double(reply.setup_hold.hold_slack);
      }
      os << " degraded=" << (reply.degraded ? 1 : 0);
      resp = reply.degraded ? ok_degraded_line(os.str()) : ok_line(os.str());
      break;
    }
    case Verb::kSlack: {
      const SlackReply reply = db_.slack(r.net, r.period);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "net=" << r.net << " epoch=" << reply.epoch
         << " valid=" << (reply.slack.valid ? 1 : 0)
         << " required=" << format_double(reply.slack.required)
         << " slack=" << format_double(reply.slack.slack)
         << " degraded=" << (reply.degraded ? 1 : 0);
      resp = reply.degraded ? ok_degraded_line(os.str()) : ok_line(os.str());
      break;
    }
    case Verb::kCritPath: {
      const CritPathReply reply = db_.critical_path();
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "epoch=" << reply.epoch << " worst=" << format_double(reply.worst)
         << " steps=" << reply.steps.size() << " path=";
      for (std::size_t i = 0; i < reply.steps.size(); ++i) {
        const auto& s = reply.steps[i];
        if (i) os << ";";
        os << s.net << ":" << (s.rising ? "R" : "F") << ":"
           << format_double(s.arrival) << ":" << s.stage;
      }
      resp = ok_line(os.str());
      break;
    }
    case Verb::kResize: {
      const MutateReply reply = db_.resize(r.stage, r.edge, r.width);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "epoch=" << reply.epoch << " stage=" << r.stage
         << " edge=" << r.edge << " width=" << format_double(r.width)
         << " staged=1";
      resp = ok_line(os.str());
      break;
    }
    case Verb::kUpdate: {
      const MutateReply reply = db_.update();
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "epoch=" << reply.epoch << " evals=" << reply.evals
         << " worst=" << format_double(reply.worst);
      resp = ok_line(os.str());
      break;
    }
    case Verb::kStats: {
      const DbStats db = db_.stats();
      ServerStats sv = stats();
      std::uint64_t total = 0;
      for (const auto& v : sv.verb) total += v.requests;
      os << "epoch=" << db.epoch << " session=" << db.session
         << " loaded=" << (db.loaded ? 1 : 0) << " stages=" << db.stages
         << " requests=" << total << " malformed=" << sv.malformed
         << " busy=" << sv.busy_rejections
         << " deadline=" << sv.deadline_expirations
         << " solve_deadline=" << sv.solve_deadline_expirations
         << " degraded=" << sv.degraded_replies
         << " fallback_nominal=" << db.qwm.fallback_counts[core::kRungNominal]
         << " fallback_damped=" << db.qwm.fallback_counts[core::kRungDamped]
         << " fallback_bisect=" << db.qwm.fallback_counts[core::kRungBisect]
         << " fallback_spice=" << db.qwm.fallback_counts[core::kRungSpice]
         << " cache_hits=" << db.cache.hits
         << " cache_misses=" << db.cache.misses
         << " slack_memo_hits=" << db.slack_cache_hits
         << " slack_memo_misses=" << db.slack_cache_misses
         << " newton_iters=" << db.qwm.newton_iterations
         << " device_evals=" << db.qwm.device_evals
         << " warm_starts=" << db.qwm.warm_starts
         << " warm_retries=" << db.qwm.warm_retries
         << " ws_bytes=" << db.workspace.high_water_bytes
         << " ws_grows=" << db.workspace.grow_events
         << " sched=" << (db.schedule == sta::Schedule::deps ? "deps"
                                                             : "levels")
         << " sched_levels=" << db.sched.levels
         << " barrier_syncs=" << db.sched.barrier_syncs
         << " tasks_enqueued=" << db.sched.tasks_enqueued
         << " ready_hwm=" << db.sched.ready_hwm
         << " chain_edges=" << db.sched.chain_edges
         << " steal_count=" << db.sched.steal_count
         << " classify_lock_waits=" << db.sched.classify_lock_waits;
      for (int i = 0; i < kVerbCount; ++i) {
        const VerbStats& v = sv.verb[i];
        if (v.requests == 0) continue;
        const char* name = verb_name(static_cast<Verb>(i));
        os << " " << name << ".count=" << v.requests << " " << name
           << ".err=" << v.errors << " " << name << ".mean_ms="
           << format_double(v.total_ms / static_cast<double>(v.requests))
           << " " << name << ".max_ms=" << format_double(v.max_ms);
      }
      resp = ok_line(os.str());
      break;
    }
    case Verb::kShutdown: {
      request_shutdown();
      resp = ok_line("bye");
      break;
    }
  }
  // Solve deadline: an overlong execution is reported as degraded service
  // instead of silently delivered late. SHUTDOWN is exempt (nothing to
  // retry), and mutations have already applied — retrying them is safe.
  const double exec_ms = ms_between(t0, Clock::now());
  if (opt_.solve_deadline_ms > 0.0 && exec_ms > opt_.solve_deadline_ms &&
      r.verb != Verb::kShutdown && is_ok(resp)) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.solve_deadline_expirations;
    }
    resp = err_line("DEGRADED", "solve took " + format_double(exec_ms) +
                                    " ms (past solve deadline); retry");
  }
  if (is_degraded(resp)) {
    std::lock_guard lock(stats_mu_);
    ++stats_.degraded_replies;
  }
  note_result(r.verb, exec_ms, is_ok(resp));
  return resp;
}

void Server::submit_and_wait(const std::shared_ptr<Conn>& conn,
                             const std::string& line) {
  auto job = std::make_shared<Job>();
  job->conn = conn;
  job->line = line;
  job->enqueued = Clock::now();
  std::future<void> done = job->done.get_future();
  bool shed_busy = false;
  {
    std::lock_guard lock(queue_mu_);
    if (queue_closed_) {
      conn->write_line(err_line("SHUTDOWN", "server stopping"));
      return;
    }
    if (static_cast<int>(queue_.size()) >= opt_.queue_capacity) {
      shed_busy = true;
    } else {
      queue_.push_back(std::move(job));
    }
  }
  if (shed_busy) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.busy_rejections;
    }
    conn->write_line(err_line("BUSY", "admission queue full"));
    return;
  }
  queue_cv_.notify_one();
  done.wait();
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const double waited_ms = ms_between(job->enqueued, Clock::now());
    std::string resp;
    if (opt_.deadline_ms > 0.0 && waited_ms > opt_.deadline_ms) {
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.deadline_expirations;
      }
      resp = err_line("DEADLINE", "request waited " + format_double(waited_ms) +
                                      " ms in queue");
    } else {
      resp = handle_line(job->line);
    }
    if (!resp.empty()) job->conn->write_line(resp);
    job->done.set_value();
  }
}

void Server::run_workers() {
  const std::size_t lanes = static_cast<std::size_t>(pool_.thread_count());
  pool_.parallel_for(lanes, [this](std::size_t) { worker_loop(); });
}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  auto conn = std::make_shared<Conn>();
  conn->out = &out;
  // The worker lanes run on the pool (pumped from this helper thread);
  // the calling thread is the transport reader.
  std::thread pump([this] { run_workers(); });
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (ignorable(line)) continue;
    submit_and_wait(conn, line);
  }
  request_shutdown();
  pump.join();
  return 0;
}

bool Server::listen(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return true;
}

void Server::serve() {
  std::thread accept_thread([this] {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down (or hard error): stop accepting
      }
      if (shutdown_requested()) {
        ::close(fd);
        return;
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      std::lock_guard lock(conns_mu_);
      conns_.push_back(conn);
      readers_.emplace_back([this, conn] { reader_loop(conn); });
    }
  });
  run_workers();  // blocks until SHUTDOWN closes and drains the queue
  // All responses are written; now unblock readers parked in recv().
  {
    std::lock_guard lock(conns_mu_);
    for (auto& w : conns_)
      if (auto c = w.lock()) c->shutdown_io();
  }
  accept_thread.join();
  // The accept thread (sole mutator of readers_) has exited.
  for (auto& t : readers_) t.join();
  readers_.clear();
  {
    std::lock_guard lock(conns_mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (ignorable(line)) continue;
      submit_and_wait(conn, line);
      if (shutdown_requested()) return;
    }
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;  // EOF, error, or shutdown_io()
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

void Server::request_shutdown() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  // Unblock accept(); connection fds are shut down by serve() after the
  // workers have drained every pending response.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

ServerStats Server::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace qwm::service
