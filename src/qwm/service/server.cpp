#include "qwm/service/server.h"

#include <cctype>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include "qwm/support/fault_injection.h"

namespace qwm::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Appends one boundary/arrival edge as the compact colon format used in
/// BOUNDARY entries: v:time:slew:degraded.
void append_edge(std::ostringstream& os, const sta::Arrival& a) {
  os << (a.valid() ? 1 : 0) << ":" << format_double(a.time) << ":"
     << format_double(a.slew) << ":" << (a.degraded ? 1 : 0);
}

}  // namespace

Server::Server(ServerOptions opt)
    : opt_(opt),
      db_(opt.db),
      transport_(TransportOptions{opt.threads, opt.queue_capacity,
                                  opt.deadline_ms}) {
  transport_.set_handler([this](const std::string& line) {
    return handle_line(line);
  });
  // HEALTH bypasses the admission queue: a saturated shard must still
  // prove liveness so the router can tell "slow" from "dead".
  transport_.set_fast_handler([this](const std::string& line,
                                     std::string* response) {
    std::string word;
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!word.empty()) break;
        continue;
      }
      word.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (word != "health") return false;
    *response = health_line();
    return true;
  });
}

Server::~Server() { request_shutdown(); }

void Server::note_result(Verb v, double ms, bool ok) {
  std::lock_guard lock(stats_mu_);
  VerbStats& s = stats_.verb[static_cast<int>(v)];
  ++s.requests;
  if (!ok) ++s.errors;
  s.total_ms += ms;
  if (ms > s.max_ms) s.max_ms = ms;
}

void Server::refresh_mirrors(std::uint64_t epoch, bool loaded) {
  epoch_mirror_.store(epoch, std::memory_order_relaxed);
  loaded_mirror_.store(loaded, std::memory_order_relaxed);
}

std::string Server::health_line() {
  health_probes_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << "health=1 loaded=" << (loaded_mirror_.load(std::memory_order_relaxed)
                                   ? 1
                                   : 0)
     << " epoch=" << epoch_mirror_.load(std::memory_order_relaxed)
     << " shard=" << db_.shard_index() << " shards=" << db_.shard_count();
  return ok_line(os.str());
}

std::string Server::handle_line(const std::string& line) {
  std::string text = line;
  // Injected transport corruption: drive the malformed-frame path
  // deterministically (the frame arrives garbled, not the parser broken).
  if (support::fire_fault(support::FaultSite::kMalformedFrame))
    text.insert(0, "\x01\x02 ");
  const ParsedRequest p = parse_request(text);
  if (!p.ok) {
    if (p.code.empty()) return "";  // blank / comment
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.malformed;
    }
    return err_line(p.code, p.error);
  }
  const Request& r = p.request;
  const auto t0 = Clock::now();
  // Injected latency: the request stalls for `magnitude` ms before the
  // engine sees it — the knob the solve-deadline tests turn.
  double slow_ms = 0.0;
  if (support::fire_fault(support::FaultSite::kSlowRequest, &slow_ms) &&
      slow_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slow_ms));
  // Injected hard failure: the request dies before execution.
  if (support::fire_fault(support::FaultSite::kFailRequest)) {
    note_result(r.verb, ms_between(t0, Clock::now()), false);
    return err_line("INJECTED", "fault injection: request failed");
  }
  std::string resp;
  std::ostringstream os;
  switch (r.verb) {
    case Verb::kLoad: {
      const LoadReply reply = db_.load_file(r.path);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      refresh_mirrors(reply.epoch, true);
      os << "epoch=" << reply.epoch << " session=" << reply.session
         << " stages=" << reply.stages << " nets=" << reply.nets
         << " evals=" << reply.evals << " warnings=" << reply.warnings.size()
         << " worst=" << format_double(reply.worst);
      if (reply.shards > 1) {
        os << " shard=" << reply.shard << " shards=" << reply.shards
           << " total_stages=" << reply.total_stages
           << " boundary_in=" << reply.boundary_in
           << " boundary_out=" << reply.boundary_out;
      }
      resp = ok_line(os.str());
      break;
    }
    case Verb::kArrival: {
      const ArrivalReply reply = db_.arrival(r.net);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      const auto& t = reply.timing;
      os << "net=" << r.net << " epoch=" << reply.epoch
         << " rise_valid=" << (t.rise.valid() ? 1 : 0)
         << " rise=" << format_double(t.rise.time)
         << " rise_slew=" << format_double(t.rise.slew)
         << " fall_valid=" << (t.fall.valid() ? 1 : 0)
         << " fall=" << format_double(t.fall.time)
         << " fall_slew=" << format_double(t.fall.slew)
         << " rise_degraded=" << (t.rise.degraded ? 1 : 0)
         << " fall_degraded=" << (t.fall.degraded ? 1 : 0);
      resp = (t.rise.degraded || t.fall.degraded) ? ok_degraded_line(os.str())
                                                  : ok_line(os.str());
      break;
    }
    case Verb::kCorners: {
      const CornersReply reply = db_.corners(r.net, r.period);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "net=" << r.net << " epoch=" << reply.epoch
         << " corners=" << reply.corners.size();
      for (const auto& ct : reply.corners) {
        const char* cn = device::corner_name(ct.corner);
        os << " " << cn << "_rise_valid=" << (ct.timing.rise.valid() ? 1 : 0)
           << " " << cn << "_rise=" << format_double(ct.timing.rise.time)
           << " " << cn << "_fall_valid=" << (ct.timing.fall.valid() ? 1 : 0)
           << " " << cn << "_fall=" << format_double(ct.timing.fall.time);
      }
      if (r.period > 0.0) {
        os << " valid=" << (reply.setup_hold.valid ? 1 : 0)
           << " latest=" << format_double(reply.setup_hold.latest)
           << " earliest=" << format_double(reply.setup_hold.earliest)
           << " setup_slack=" << format_double(reply.setup_hold.setup_slack)
           << " hold_slack=" << format_double(reply.setup_hold.hold_slack);
      }
      os << " degraded=" << (reply.degraded ? 1 : 0);
      resp = reply.degraded ? ok_degraded_line(os.str()) : ok_line(os.str());
      break;
    }
    case Verb::kSlack: {
      const SlackReply reply = db_.slack(r.net, r.period);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "net=" << r.net << " epoch=" << reply.epoch
         << " valid=" << (reply.slack.valid ? 1 : 0)
         << " required=" << format_double(reply.slack.required)
         << " slack=" << format_double(reply.slack.slack)
         << " degraded=" << (reply.degraded ? 1 : 0);
      resp = reply.degraded ? ok_degraded_line(os.str()) : ok_line(os.str());
      break;
    }
    case Verb::kCritPath: {
      const CritPathReply reply =
          r.net.empty() ? db_.critical_path()
                        : db_.critical_path(r.net, r.path_edge);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "epoch=" << reply.epoch << " worst=" << format_double(reply.worst)
         << " steps=" << reply.steps.size() << " path=";
      for (std::size_t i = 0; i < reply.steps.size(); ++i) {
        const auto& s = reply.steps[i];
        if (i) os << ";";
        os << s.net << ":" << (s.rising ? "R" : "F") << ":"
           << format_double(s.arrival) << ":" << s.stage;
      }
      resp = ok_line(os.str());
      break;
    }
    case Verb::kResize: {
      const MutateReply reply = db_.resize(r.stage, r.edge, r.width);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      refresh_mirrors(reply.epoch, true);
      os << "epoch=" << reply.epoch << " stage=" << r.stage
         << " edge=" << r.edge << " width=" << format_double(r.width)
         << " staged=1";
      resp = ok_line(os.str());
      break;
    }
    case Verb::kUpdate: {
      const MutateReply reply = db_.update();
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      refresh_mirrors(reply.epoch, true);
      os << "epoch=" << reply.epoch << " evals=" << reply.evals
         << " worst=" << format_double(reply.worst);
      resp = ok_line(os.str());
      break;
    }
    case Verb::kStats: {
      const DbStats db = db_.stats();
      ServerStats sv = stats();
      std::uint64_t total = 0;
      for (const auto& v : sv.verb) total += v.requests;
      const TransportStats ts = transport_.stats();
      os << "epoch=" << db.epoch << " session=" << db.session
         << " loaded=" << (db.loaded ? 1 : 0) << " stages=" << db.stages
         << " shard=" << db.shard << " shards=" << db.shards
         << " boundary_out=" << db.boundary_out
         << " requests=" << total << " malformed=" << sv.malformed
         << " busy=" << sv.busy_rejections
         << " deadline=" << sv.deadline_expirations
         << " solve_deadline=" << sv.solve_deadline_expirations
         << " degraded=" << sv.degraded_replies
         << " health_probes=" << sv.health_probes
         << " dropped_conns=" << ts.dropped_connections
         << " stalled_replies=" << ts.stalled_replies
         << " corrupted_replies=" << ts.corrupted_replies
         << " fallback_nominal=" << db.qwm.fallback_counts[core::kRungNominal]
         << " fallback_damped=" << db.qwm.fallback_counts[core::kRungDamped]
         << " fallback_bisect=" << db.qwm.fallback_counts[core::kRungBisect]
         << " fallback_spice=" << db.qwm.fallback_counts[core::kRungSpice]
         << " cache_hits=" << db.cache.hits
         << " cache_misses=" << db.cache.misses
         << " slack_memo_hits=" << db.slack_cache_hits
         << " slack_memo_misses=" << db.slack_cache_misses
         << " newton_iters=" << db.qwm.newton_iterations
         << " device_evals=" << db.qwm.device_evals
         << " warm_starts=" << db.qwm.warm_starts
         << " warm_retries=" << db.qwm.warm_retries
         << " ws_bytes=" << db.workspace.high_water_bytes
         << " ws_grows=" << db.workspace.grow_events
         << " sched=" << (db.schedule == sta::Schedule::deps ? "deps"
                                                             : "levels")
         << " sched_levels=" << db.sched.levels
         << " barrier_syncs=" << db.sched.barrier_syncs
         << " tasks_enqueued=" << db.sched.tasks_enqueued
         << " ready_hwm=" << db.sched.ready_hwm
         << " chain_edges=" << db.sched.chain_edges
         << " steal_count=" << db.sched.steal_count
         << " classify_lock_waits=" << db.sched.classify_lock_waits;
      for (int i = 0; i < kVerbCount; ++i) {
        const VerbStats& v = sv.verb[i];
        if (v.requests == 0) continue;
        const char* name = verb_name(static_cast<Verb>(i));
        os << " " << name << ".count=" << v.requests << " " << name
           << ".err=" << v.errors << " " << name << ".mean_ms="
           << format_double(v.total_ms / static_cast<double>(v.requests))
           << " " << name << ".max_ms=" << format_double(v.max_ms);
      }
      resp = ok_line(os.str());
      break;
    }
    case Verb::kHealth: {
      // Normally intercepted by the transport fast path; answered here
      // too so direct handle_line() callers get the same reply.
      resp = health_line();
      break;
    }
    case Verb::kBoundary: {
      const BoundaryReply reply = db_.boundary();
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      os << "epoch=" << reply.epoch << " count=" << reply.entries.size()
         << " nets=";
      for (std::size_t i = 0; i < reply.entries.size(); ++i) {
        const auto& e = reply.entries[i];
        if (i) os << ";";
        os << e.net << ":";
        append_edge(os, e.timing.rise);
        os << ":";
        append_edge(os, e.timing.fall);
      }
      resp = ok_line(os.str());
      break;
    }
    case Verb::kSetArr: {
      sta::NetTiming t;
      if (r.rise.valid) {
        t.rise.time = r.rise.time;
        t.rise.slew = r.rise.slew;
        t.rise.degraded = r.rise.degraded;
      }
      if (r.fall.valid) {
        t.fall.time = r.fall.time;
        t.fall.slew = r.fall.slew;
        t.fall.degraded = r.fall.degraded;
      }
      const MutateReply reply = db_.set_arrival(r.net, t);
      if (!reply.status.ok) {
        resp = err_line(reply.status.code, reply.status.message);
        break;
      }
      refresh_mirrors(reply.epoch, true);
      os << "epoch=" << reply.epoch << " net=" << r.net << " staged=1";
      resp = ok_line(os.str());
      break;
    }
    case Verb::kShutdown: {
      request_shutdown();
      resp = ok_line("bye");
      break;
    }
  }
  // Solve deadline: an overlong execution is reported as degraded service
  // instead of silently delivered late. SHUTDOWN is exempt (nothing to
  // retry), and mutations have already applied — retrying them is safe.
  const double exec_ms = ms_between(t0, Clock::now());
  if (opt_.solve_deadline_ms > 0.0 && exec_ms > opt_.solve_deadline_ms &&
      r.verb != Verb::kShutdown && is_ok(resp)) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.solve_deadline_expirations;
    }
    resp = err_line("DEGRADED", "solve took " + format_double(exec_ms) +
                                    " ms (past solve deadline); retry");
  }
  if (is_degraded(resp)) {
    std::lock_guard lock(stats_mu_);
    ++stats_.degraded_replies;
  }
  note_result(r.verb, exec_ms, is_ok(resp));
  return resp;
}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  return transport_.serve_stream(in, out);
}

bool Server::listen(int port) { return transport_.listen(port); }

void Server::serve() { transport_.serve(); }

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard lock(stats_mu_);
    s = stats_;
  }
  const TransportStats ts = transport_.stats();
  s.busy_rejections = ts.busy_rejections;
  s.deadline_expirations = ts.deadline_expirations;
  s.health_probes = health_probes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace qwm::service
