// DesignDb — the serving layer's versioned design store.
//
// Holds the live *design session* (deck -> model cards -> partition ->
// StaEngine full analysis) behind a reader–writer discipline:
//
//  * Queries (ARRIVAL, SLACK, CRITPATH, STATS) take the shared lock and
//    read the frozen post-run()/update() timing snapshot through the
//    engine's const query surface. Any number run concurrently.
//  * Mutations (LOAD, RESIZE, UPDATE) take the exclusive lock, apply the
//    edit — RESIZE stages a width change and dirties its stage, UPDATE
//    re-runs only the dirty fanout cone — and bump the monotonically
//    increasing *epoch*.
//
// Every reply carries the epoch it was computed at, so a client (or the
// service stress test) can reproduce, with a fresh single-threaded
// StaEngine and the same edit prefix, the exact state that answered it:
// the engine's determinism contract makes the answers bit-identical
// regardless of the service's lane count.
//
// LOAD replaces the session wholesale (a new session id); the epoch
// keeps counting across sessions so stale clients cannot mistake a reply
// from a previous design for a current one.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "qwm/sta/sta.h"
#include "qwm/support/counters.h"

namespace qwm::service {

struct DesignDbOptions {
  sta::StaOptions sta;  ///< engine configuration for every loaded session
  /// Characterize fast/slow corner models at LOAD and propagate one
  /// arrival lane per corner (enables the CORNERS verb). Off by default:
  /// it triples characterization work at load time, so single-corner
  /// deployments shouldn't pay for it.
  bool corners = false;
  /// Shard mode (shard_count > 1): LOAD parses and partitions the full
  /// deck, then keeps only this shard's slice of the deterministic
  /// level-major ShardMap (see shard_map.h). Boundary inputs — nets
  /// driven by an earlier shard — start *invalid* (no answer yet, never
  /// a wrong one) until the fleet injects their arrivals via
  /// set_arrival + update. Stage indices on the wire (RESIZE, CRITPATH
  /// steps) stay global; the db translates at the boundary, so a
  /// sharded fleet's replies are positionally identical to a
  /// single-process run's. SLACK and CORNERS are refused in shard mode
  /// (both need whole-graph context; the router serves them from a
  /// full-design replica).
  int shard_index = 0;
  int shard_count = 1;
};

/// Outcome common to all replies. `code` is the protocol error code
/// (NODESIGN, NOTFOUND, ARG, LOAD) when !ok.
struct Status {
  bool ok = true;
  std::string code;
  std::string message;
};

struct LoadReply {
  Status status;
  std::uint64_t epoch = 0;
  std::uint64_t session = 0;
  std::size_t stages = 0;  ///< shard mode: stages of *this* slice
  std::size_t nets = 0;
  std::size_t evals = 0;
  double worst = 0.0;
  /// Shard mode bookkeeping (shards == 1 otherwise).
  int shard = 0;
  int shards = 1;
  std::size_t total_stages = 0;    ///< full design, before slicing
  std::size_t boundary_in = 0;     ///< inputs awaiting fleet injection
  std::size_t boundary_out = 0;    ///< nets exported via BOUNDARY
  std::vector<std::string> warnings;
};

struct ArrivalReply {
  Status status;
  std::uint64_t epoch = 0;
  /// Invalid arrivals (valid() == false) when the net exists but never
  /// received timing — the engine's stable miss path, never a crash.
  sta::NetTiming timing;
};

/// One corner's arrival pair within a CORNERS reply.
struct CornerTimingReply {
  device::Corner corner = device::Corner::typical;
  sta::NetTiming timing;
};

struct CornersReply {
  Status status;
  std::uint64_t epoch = 0;
  /// Active corners in engine order (typical first).
  std::vector<CornerTimingReply> corners;
  /// Min/max arrival envelope vs the requested clock period; only
  /// populated when the query carried a period.
  sta::StaEngine::SetupHold setup_hold;
  /// Any reported arrival rests on fallback-ladder data.
  bool degraded = false;
};

struct SlackReply {
  Status status;
  std::uint64_t epoch = 0;
  sta::StaEngine::Slack slack;  ///< valid=false: off every constrained cone
  bool cache_hit = false;       ///< served from the per-epoch slack memo
  /// The net's arrivals (hence the slack) rest on fallback-ladder data.
  bool degraded = false;
};

struct CritPathStepReply {
  std::string net;
  bool rising = false;
  double arrival = 0.0;
  int stage = -1;
};

struct CritPathReply {
  Status status;
  std::uint64_t epoch = 0;
  double worst = 0.0;
  std::vector<CritPathStepReply> steps;
};

/// One exported boundary net inside a BOUNDARY reply.
struct BoundaryEntry {
  std::string net;
  sta::NetTiming timing;
};

struct BoundaryReply {
  Status status;
  std::uint64_t epoch = 0;
  std::vector<BoundaryEntry> entries;  ///< sorted by NetId (deterministic)
};

/// RESIZE / UPDATE outcome.
struct MutateReply {
  Status status;
  std::uint64_t epoch = 0;
  std::size_t evals = 0;  ///< UPDATE: incremental stage evaluations
  double worst = 0.0;
};

struct DbStats {
  std::uint64_t epoch = 0;
  std::uint64_t session = 0;
  bool loaded = false;
  std::size_t stages = 0;
  int shard = 0;
  int shards = 1;
  std::size_t boundary_out = 0;
  support::CacheStats cache;          ///< engine memo-cache activity
  std::uint64_t slack_cache_hits = 0;
  std::uint64_t slack_cache_misses = 0;
  core::QwmStats qwm;                 ///< aggregate QWM work counters
  core::WorkspaceStats workspace;     ///< scratch-arena footprint (all lanes)
  /// Active stage-schedule mode (from the engine options) and its work
  /// counters — the deps-vs-levels observables, ready-queue high-water
  /// mark included.
  sta::Schedule schedule = sta::Schedule::levels;
  sta::ScheduleStats sched;
};

class DesignDb {
 public:
  explicit DesignDb(DesignDbOptions opt = {});
  ~DesignDb();

  DesignDb(const DesignDb&) = delete;
  DesignDb& operator=(const DesignDb&) = delete;

  /// Parse + partition + full analysis; replaces any current session.
  /// Accepts SPICE decks, `.blif` structural netlists, and generator
  /// specs ("gen:<topo>:<stages>[:seed=<s>][:width=<w>]") — the latter
  /// two elaborate through the gate-library frontend.
  LoadReply load_file(const std::string& path);
  /// Same from an in-memory deck (diagnostics labelled `<name>`).
  LoadReply load_text(const std::string& text, const std::string& name);

  ArrivalReply arrival(const std::string& net) const;
  /// Per-corner arrivals (+ setup/hold envelope when period > 0).
  /// UNSUPPORTED unless the db was opened with options.corners.
  CornersReply corners(const std::string& net, double period = 0.0) const;
  SlackReply slack(const std::string& net, double period) const;
  CritPathReply critical_path() const;
  /// Backtrace feeding a specific endpoint arrival; `edge` is 'R', 'F',
  /// or 0 (the worse valid edge). The router's cross-shard stitching
  /// query.
  CritPathReply critical_path(const std::string& net, char edge) const;

  /// Shard mode: arrivals of the nets this shard exports to later
  /// shards (empty in single-shard mode — nothing to exchange).
  BoundaryReply boundary() const;
  /// Injects a boundary-input arrival verbatim (validity, slews,
  /// degraded flags) and bumps the epoch; the cone re-propagates on the
  /// next update(). ARG unless `net` is a primary input of the served
  /// slice — a driven net cannot be shadowed.
  MutateReply set_arrival(const std::string& net, const sta::NetTiming& t);

  /// Stages a transistor resize (validated: stage/edge in range, a real
  /// transistor, positive width). Takes effect on timing at UPDATE.
  MutateReply resize(int stage, int edge, double width);
  /// Incremental re-analysis of the dirty cone.
  MutateReply update();

  DbStats stats() const;
  std::uint64_t epoch() const;
  bool has_design() const;
  int shard_index() const { return opt_.shard_index; }
  int shard_count() const { return opt_.shard_count; }

 private:
  struct Session;

  LoadReply load_parsed(const std::string& text_or_path, bool is_file,
                        const std::string& name);
  /// LOAD path for gate-level sources (.blif files and gen: specs).
  LoadReply load_frontend(const std::string& source);
  /// Shared LOAD tail: build the engine over a partitioned design, run
  /// the full analysis, and swap the session in under the writer lock.
  LoadReply finish_load(std::unique_ptr<Session> session,
                        circuit::PartitionedDesign design,
                        const device::ModelSet& models, LoadReply reply,
                        const std::string& name);

  /// Readers pass through gate_ before taking mu_ shared; writers hold
  /// gate_ while waiting for mu_ exclusive. A stream of hot readers can
  /// otherwise starve writers forever on reader-preferring rwlocks
  /// (glibc's default): with the gate, a waiting writer blocks new
  /// readers, the in-flight ones drain, and the mutation proceeds.
  std::shared_lock<std::shared_mutex> reader_lock() const;
  std::unique_lock<std::shared_mutex> writer_lock();

  DesignDbOptions opt_;
  mutable std::mutex gate_;       ///< writer-fairness gate (see above)
  mutable std::shared_mutex mu_;  ///< reader–writer discipline
  std::unique_ptr<Session> session_;
  std::uint64_t epoch_ = 0;       ///< bumped by every successful mutation
  std::uint64_t session_id_ = 0;  ///< bumped by every successful LOAD

  // SLACK memo: compute_slacks() is design-wide, so one computation per
  // (epoch, period) serves every per-net SLACK query at that epoch.
  // Guarded by its own mutex, always acquired *after* the shared lock.
  mutable std::mutex slack_mu_;
  mutable std::uint64_t slack_epoch_ = 0;
  mutable double slack_period_ = -1.0;
  mutable std::unordered_map<netlist::NetId, sta::StaEngine::Slack> slack_map_;
  mutable std::uint64_t slack_hits_ = 0;
  mutable std::uint64_t slack_misses_ = 0;
};

}  // namespace qwm::service
