// Shard endpoints — how the fleet layer talks to one serving process.
//
// ShardEndpoint is the one-line-in / one-line-out contract with a hard
// per-call deadline. TcpEndpoint speaks it over a persistent loopback
// connection with SO_RCVTIMEO/SO_SNDTIMEO deadlines, reconnecting after
// any failure (a timed-out connection has an unknowable protocol state,
// so it is always discarded — the next call starts clean). Callback
// endpoints wrap an in-process handler (a Server's handle_line) for
// socket-free fleets in benchmarks.
//
// An endpoint serializes its own calls: the wire protocol is strict
// request/response, so concurrent callers of one endpoint queue on its
// internal mutex rather than interleaving frames.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace qwm::service {

class ShardEndpoint {
 public:
  virtual ~ShardEndpoint() = default;

  /// One round trip. False on any transport failure — connect refused,
  /// send/recv error, torn line, or deadline expiry — after which the
  /// connection (if any) has been discarded. `*response` is only
  /// written on success.
  virtual bool call(const std::string& line, double timeout_ms,
                    std::string* response) = 0;
};

/// TCP loopback endpoint (see header comment).
class TcpEndpoint : public ShardEndpoint {
 public:
  explicit TcpEndpoint(int port);
  ~TcpEndpoint() override;

  bool call(const std::string& line, double timeout_ms,
            std::string* response) override;

  int port() const { return port_; }

 private:
  bool ensure_connected(double timeout_ms);
  void disconnect();

  int port_;
  std::mutex mu_;
  int fd_ = -1;
  std::string buf_;  ///< bytes past the last consumed newline
};

/// In-process endpoint over any line handler. The handler returning ""
/// is reported as a transport failure (a real handler always answers
/// non-ignorable lines), which lets tests simulate a dead shard.
class CallbackEndpoint : public ShardEndpoint {
 public:
  using Handler = std::function<std::string(const std::string& line)>;
  explicit CallbackEndpoint(Handler h) : handler_(std::move(h)) {}

  bool call(const std::string& line, double /*timeout_ms*/,
            std::string* response) override {
    std::lock_guard lock(mu_);
    std::string r = handler_(line);
    if (r.empty()) return false;
    *response = std::move(r);
    return true;
  }

 private:
  std::mutex mu_;
  Handler handler_;
};

}  // namespace qwm::service
