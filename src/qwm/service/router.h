// Router — the fleet's client-facing server.
//
// A Router is a LineTransport (same bounded admission queue, worker
// lanes, BUSY shedding, and deadline handling as a single qwm_serve)
// whose handler is a Fleet: clients speak the exact protocol they would
// speak to one server, and the router fans out / fails over behind it.
// HEALTH is answered on the transport fast path from the fleet's atomic
// mirrors, so the router proves its own liveness even while a LOAD or a
// supervision pass holds the fleet lock.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "qwm/service/fleet.h"
#include "qwm/service/transport.h"

namespace qwm::service {

struct RouterOptions {
  int threads = 4;
  int queue_capacity = 64;
  double deadline_ms = 0.0;  ///< queue-wait deadline (0 = none)
};

class Router {
 public:
  /// `fleet` must outlive the router.
  Router(Fleet* fleet, RouterOptions opt = {});
  ~Router();

  /// One request line -> one reply line ("" for blank/comment lines).
  /// SHUTDOWN stops the fleet's shards, then this router's transport.
  std::string handle_line(const std::string& line);

  int serve_stream(std::istream& in, std::ostream& out);
  bool listen(int port);
  const std::string& listen_error() const { return transport_.listen_error(); }
  int port() const { return transport_.port(); }
  void serve();
  void request_shutdown();
  bool shutdown_requested() const { return transport_.shutdown_requested(); }

  TransportStats transport_stats() const { return transport_.stats(); }

 private:
  Fleet* fleet_;
  LineTransport transport_;
};

}  // namespace qwm::service
