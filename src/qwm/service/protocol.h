// Wire protocol of the qwm_serve timing-query daemon.
//
// Dependency-free, newline-delimited text: every request is one line
// (verb + space-separated operands), every response is exactly one line
// beginning with "OK" or "ERR <CODE>". The format is deliberately
// trivial so any client — the qwm_load generator, a shell script piping
// into the stdio transport, or a test — can speak it with getline().
//
//   LOAD <deck.sp>             parse + partition + full STA analysis
//   ARRIVAL <net>              rise/fall arrival + slew of one net
//   CORNERS <net> [period]     per-corner arrivals; with a period, the
//                              min/max envelope's setup/hold slack too
//                              (requires a --corners server)
//   SLACK <net> <period>       slack against a clock period (SPICE suffixes ok)
//   CRITPATH                   worst path from endpoint to primary input
//   RESIZE <stage> <edge> <w>  stage a transistor resize (width in meters)
//   UPDATE                     incremental re-analysis of the dirty cone
//   STATS                      server + cache + per-verb counters
//   SHUTDOWN                   stop the daemon
//
// Doubles are printed with "%.17g" so a response round-trips the exact
// bits of the engine's answer — the property the cross-engine
// verification in qwm_load and the service stress test rely on.
#pragma once

#include <string>

namespace qwm::service {

enum class Verb {
  kLoad,
  kArrival,
  kCorners,
  kSlack,
  kCritPath,
  kResize,
  kUpdate,
  kStats,
  kShutdown,
};
inline constexpr int kVerbCount = 9;

/// Lower-case wire name of a verb ("arrival", "critpath", ...).
const char* verb_name(Verb v);

struct Request {
  Verb verb = Verb::kStats;
  std::string path;    ///< LOAD
  std::string net;     ///< ARRIVAL / CORNERS / SLACK
  double period = 0.0; ///< SLACK [s]; CORNERS optional (0 = arrivals only)
  int stage = -1;      ///< RESIZE
  int edge = -1;       ///< RESIZE
  double width = 0.0;  ///< RESIZE [m]
};

/// Outcome of parsing one request line.
struct ParsedRequest {
  bool ok = false;
  Request request;
  std::string code;    ///< error code when !ok (BADCMD or ARG)
  std::string error;   ///< human-readable parse failure
};

/// Parses a request line (verbs are case-insensitive; blank lines and
/// '#' comment lines yield !ok with an empty code — callers skip them).
ParsedRequest parse_request(const std::string& line);

/// Response construction. Both return a full line without the newline.
std::string ok_line(const std::string& payload);
std::string err_line(const std::string& code, const std::string& message);
/// "OK DEGRADED <payload>": the answer is usable but was produced by the
/// QWM fallback ladder (or depends on an upstream fallback result) —
/// within documented tolerance, not nominal-accuracy. is_ok() accepts it;
/// clients that care test is_degraded().
std::string ok_degraded_line(const std::string& payload);

bool is_ok(const std::string& response);
/// True when the response is "OK DEGRADED ..." (a usable fallback answer).
bool is_degraded(const std::string& response);
/// True when the response is "ERR <code> ..." (any code if empty).
bool is_err(const std::string& response, const std::string& code = "");

/// "%.17g": doubles survive a print/parse round trip bit-exactly.
std::string format_double(double v);

/// Extracts the value of `key` from an "OK k=v k=v ..." payload line;
/// empty string when absent.
std::string response_field(const std::string& response, const std::string& key);

}  // namespace qwm::service
