// Wire protocol of the qwm_serve timing-query daemon.
//
// Dependency-free, newline-delimited text: every request is one line
// (verb + space-separated operands), every response is exactly one line
// beginning with "OK" or "ERR <CODE>". The format is deliberately
// trivial so any client — the qwm_load generator, a shell script piping
// into the stdio transport, or a test — can speak it with getline().
//
//   LOAD <deck.sp>             parse + partition + full STA analysis
//   ARRIVAL <net>              rise/fall arrival + slew of one net
//   CORNERS <net> [period]     per-corner arrivals; with a period, the
//                              min/max envelope's setup/hold slack too
//                              (requires a --corners server)
//   SLACK <net> <period>       slack against a clock period (SPICE suffixes ok)
//   CRITPATH [net [R|F]]       worst path from endpoint to primary input;
//                              with a net (and optional edge), the path
//                              feeding that arrival instead — the shard
//                              router's cross-shard stitching primitive
//   RESIZE <stage> <edge> <w>  stage a transistor resize (width in meters)
//   UPDATE                     incremental re-analysis of the dirty cone
//   STATS                      server + cache + per-verb counters
//   HEALTH                     liveness probe (answered off the admission
//                              queue, so it works even under overload)
//   BOUNDARY                   shard mode: arrivals of the boundary nets
//                              this shard exports to its consumers
//   SETARR <net> <rv> <rise> <rslew> <rdeg> <fv> <fall> <fslew> <fdeg>
//                              inject a boundary input arrival (both
//                              edges with validity + degraded flags);
//                              the fleet's boundary-arrival exchange
//                              verb
//   SHUTDOWN                   stop the daemon
//
// Error responses are "ERR <CODE> [message]" with a structured code
// (BADCMD, ARG, LOAD, NODESIGN, NOTFOUND, UNSUPPORTED, BUSY, DEADLINE,
// DEGRADED, SHUTDOWN, INJECTED, NOTOWNED, SHARD_DOWN, INTERNAL);
// err_code() extracts the code so clients classify by token instead of
// ad-hoc prefix matching.
//
// Doubles are printed with "%.17g" so a response round-trips the exact
// bits of the engine's answer — the property the cross-engine
// verification in qwm_load, the boundary-arrival exchange between
// shards, and the service stress test rely on.
#pragma once

#include <string>

namespace qwm::service {

enum class Verb {
  kLoad,
  kArrival,
  kCorners,
  kSlack,
  kCritPath,
  kResize,
  kUpdate,
  kStats,
  kHealth,
  kBoundary,
  kSetArr,
  kShutdown,
};
inline constexpr int kVerbCount = 12;

/// Lower-case wire name of a verb ("arrival", "critpath", ...).
const char* verb_name(Verb v);

/// One edge's injected arrival inside a SETARR request.
struct ArrivalField {
  bool valid = false;
  double time = 0.0;
  double slew = 0.0;
  bool degraded = false;
};

struct Request {
  Verb verb = Verb::kStats;
  std::string path;    ///< LOAD
  std::string net;     ///< ARRIVAL / CORNERS / SLACK / SETARR / CRITPATH opt.
  double period = 0.0; ///< SLACK [s]; CORNERS optional (0 = arrivals only)
  int stage = -1;      ///< RESIZE
  int edge = -1;       ///< RESIZE
  double width = 0.0;  ///< RESIZE [m]
  /// CRITPATH endpoint edge: 'R', 'F', or 0 (pick the worse edge).
  char path_edge = 0;
  // SETARR operands.
  ArrivalField rise;
  ArrivalField fall;
};

/// Outcome of parsing one request line.
struct ParsedRequest {
  bool ok = false;
  Request request;
  std::string code;    ///< error code when !ok (BADCMD or ARG)
  std::string error;   ///< human-readable parse failure
};

/// Parses a request line (verbs are case-insensitive; blank lines and
/// '#' comment lines yield !ok with an empty code — callers skip them).
ParsedRequest parse_request(const std::string& line);

/// Response construction. Both return a full line without the newline.
std::string ok_line(const std::string& payload);
std::string err_line(const std::string& code, const std::string& message);
/// "OK DEGRADED <payload>": the answer is usable but was produced by the
/// QWM fallback ladder (or depends on an upstream fallback result) —
/// within documented tolerance, not nominal-accuracy. is_ok() accepts it;
/// clients that care test is_degraded().
std::string ok_degraded_line(const std::string& payload);

bool is_ok(const std::string& response);
/// True when the response is "OK DEGRADED ..." (a usable fallback answer).
bool is_degraded(const std::string& response);
/// True when the response is "ERR <code> ..." (any code if empty).
bool is_err(const std::string& response, const std::string& code = "");

/// Code token of an "ERR <CODE> ..." response; "" when the response is
/// not an error (or carries no code). The structured-classification
/// helper shared by qwm_load and the shard router — replaces per-client
/// prefix matching.
std::string err_code(const std::string& response);

/// True for error codes that are transient by contract — load shedding
/// (BUSY), queue-wait expiry (DEADLINE), degraded service (DEGRADED),
/// and a shard mid-failover (SHARD_DOWN) — the set a client may retry
/// with backoff; everything else is a definitive answer.
bool retryable_code(const std::string& code);

/// Re-tags an OK response as "OK DEGRADED" (idempotent; errors pass
/// through unchanged) — how the router marks an answer served around a
/// dead shard.
std::string degrade_response(const std::string& response);

/// Returns `response` with the `key=value` token replaced (or appended
/// when absent). The router uses this to stamp fleet-epoch and shard
/// provenance onto shard replies without reprinting any double field.
std::string with_field(const std::string& response, const std::string& key,
                       const std::string& value);

/// "%.17g": doubles survive a print/parse round trip bit-exactly.
std::string format_double(double v);

/// Extracts the value of `key` from an "OK k=v k=v ..." payload line;
/// empty string when absent.
std::string response_field(const std::string& response, const std::string& key);

}  // namespace qwm::service
