#include "qwm/service/fleet.h"

#include <cctype>
#include <cstdlib>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/frontend/elaborate.h"
#include "qwm/frontend/frontend.h"
#include "qwm/netlist/apply_models.h"
#include "qwm/netlist/flat.h"
#include "qwm/netlist/parser.h"
#include "qwm/service/protocol.h"
#include "qwm/service/shard_map.h"

namespace qwm::service {

namespace {

/// One parsed CRITPATH step, fields kept as raw text so re-emitting a
/// stitched path never reprints (and so never perturbs) a double.
struct PathStep {
  std::string net;
  std::string edge;     ///< "R" or "F"
  std::string arrival;  ///< %.17g text
  std::string stage;    ///< global stage index, "-1" at a path origin
};

/// Splits `entry` into `prefix:f1:...:fN` from the right (N = `fields`),
/// so net names containing ':' would still parse. False when the entry
/// has too few separators.
bool rsplit(const std::string& entry, int fields, std::string* prefix,
            std::vector<std::string>* out) {
  out->assign(static_cast<std::size_t>(fields), {});
  std::size_t end = entry.size();
  for (int i = fields - 1; i >= 0; --i) {
    const std::size_t colon = entry.rfind(':', end == 0 ? 0 : end - 1);
    if (colon == std::string::npos || colon >= end) return false;
    (*out)[static_cast<std::size_t>(i)] =
        entry.substr(colon + 1, end - colon - 1);
    end = colon;
  }
  *prefix = entry.substr(0, end);
  return true;
}

void split_list(const std::string& text, char sep,
                std::vector<std::string>* out) {
  out->clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      if (start < text.size()) out->push_back(text.substr(start));
      break;
    }
    out->push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_path_response(const std::string& resp, std::string* worst,
                         std::vector<PathStep>* steps) {
  *worst = response_field(resp, "worst");
  steps->clear();
  const std::string path = response_field(resp, "path");
  if (worst->empty() || path.empty()) return false;
  std::vector<std::string> entries;
  split_list(path, ';', &entries);
  std::vector<std::string> f;
  for (const std::string& e : entries) {
    PathStep s;
    if (!rsplit(e, 3, &s.net, &f)) return false;
    s.edge = f[0];
    s.arrival = f[1];
    s.stage = f[2];
    steps->push_back(std::move(s));
  }
  return !steps->empty();
}

std::string format_path_reply(std::uint64_t epoch, const std::string& worst,
                              const std::vector<PathStep>& steps) {
  std::string out = "OK epoch=" + std::to_string(epoch) + " worst=" + worst +
                    " steps=" + std::to_string(steps.size()) + " path=";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i) out += ';';
    out += steps[i].net;
    out += ':';
    out += steps[i].edge;
    out += ':';
    out += steps[i].arrival;
    out += ':';
    out += steps[i].stage;
  }
  return out;
}

/// A reply that passed the transport but carries control bytes is a torn
/// frame (the corrupt-reply fault site plants "\x01TORN"); treat it as a
/// transport failure so the health ladder and retry logic engage.
bool clean_line(const std::string& resp) {
  for (const char c : resp)
    if (static_cast<unsigned char>(c) < 0x20) return false;
  return true;
}

bool sane_reply(const std::string& resp) {
  return clean_line(resp) && (is_ok(resp) || is_err(resp));
}

}  // namespace

/// The router's full-design knowledge: who owns which net/stage, which
/// shards consume each boundary net, and the last-known boundary
/// arrivals (the failover cache). Built once per LOAD from the same
/// deterministic parse + partition + shard map every shard computes.
struct Fleet::Routing {
  netlist::FlatNetlist nl;
  ShardMap map;
  std::size_t total_stages = 0;
  /// Driven net -> owning shard (absent: primary input or rail).
  std::unordered_map<netlist::NetId, int> owner_of_net;
  std::unordered_set<netlist::NetId> primary_inputs;
  /// Boundary net -> shards whose slices consume it (ascending).
  std::unordered_map<netlist::NetId, std::vector<int>> consumers_of;
  /// Boundary net -> its last exported SETARR operands (8 raw fields:
  /// rv rise rslew rdeg fv fall fslew fdeg). Failover re-injects these
  /// with the degraded flags forced on.
  std::unordered_map<netlist::NetId, std::vector<std::string>> boundary_cache;
};

namespace {

/// Mirrors DesignDb's LOAD pipeline far enough to recover the stage
/// graph: parse (SPICE or frontend source), characterize models,
/// partition. The parse and partition are deterministic, so the
/// resulting ownership tables agree with what every shard computed from
/// the same deck.
std::unique_ptr<Fleet::Routing> build_routing(const std::string& path,
                                              int shard_count,
                                              std::string* error) {
  device::Process proc = device::Process::cmosp35();
  netlist::FlatNetlist nl;
  circuit::PartitionedDesign design;
  if (frontend::is_frontend_source(path)) {
    frontend::BlifResult loaded = frontend::load_gate_netlist(path);
    if (!loaded.ok()) {
      *error = loaded.errors.front();
      return nullptr;
    }
    device::TabularDeviceModel nmos(device::MosType::nmos, proc);
    device::TabularDeviceModel pmos(device::MosType::pmos, proc);
    const device::ModelSet models{&nmos, &pmos, &proc};
    frontend::ElaboratedDesign elab = frontend::elaborate(loaded.netlist,
                                                          models);
    nl = std::move(elab.nl);
    design = std::move(elab.design);
  } else {
    netlist::ParseResult parsed = netlist::parse_spice_file(path);
    if (!parsed.ok()) {
      *error = parsed.errors.front();
      return nullptr;
    }
    nl = std::move(parsed.netlist);
    netlist::apply_model_cards(nl, &proc);
    device::TabularDeviceModel nmos(device::MosType::nmos, proc);
    device::TabularDeviceModel pmos(device::MosType::pmos, proc);
    const device::ModelSet models{&nmos, &pmos, &proc};
    design = circuit::partition_netlist(nl, models);
  }
  if (design.stages.empty()) {
    *error = path + ": deck contains no logic stages";
    return nullptr;
  }
  auto routing = std::make_unique<Fleet::Routing>();
  routing->map = build_shard_map(design, shard_count);
  if (!routing->map.acyclic) {
    *error = path + ": cyclic stage graph cannot be sharded; serve it "
                    "single-shard";
    return nullptr;
  }
  if (routing->map.shard_count < shard_count) {
    *error = path + ": design too small for " + std::to_string(shard_count) +
             " shards";
    return nullptr;
  }
  routing->total_stages = design.stages.size();
  for (const auto& [net, driver] : design.driver_of)
    routing->owner_of_net[net] =
        routing->map.shard_of[static_cast<std::size_t>(driver.first)];
  routing->primary_inputs.insert(design.primary_inputs.begin(),
                                 design.primary_inputs.end());
  for (int s = 0; s < routing->map.shard_count; ++s) {
    for (const int g : routing->map.stages_of[static_cast<std::size_t>(s)]) {
      for (const netlist::NetId n :
           design.stages[static_cast<std::size_t>(g)].input_nets) {
        const auto it = design.driver_of.find(n);
        if (it == design.driver_of.end()) continue;
        if (routing->map.shard_of[static_cast<std::size_t>(it->second.first)] ==
            s)
          continue;
        auto& consumers = routing->consumers_of[n];
        if (consumers.empty() || consumers.back() != s) consumers.push_back(s);
      }
    }
  }
  // NetIds and names must survive the routing's lifetime (the stages do
  // not — only ownership was needed from them).
  routing->nl = std::move(nl);
  return routing;
}

}  // namespace

Fleet::Fleet(FleetOptions opt,
             std::vector<std::unique_ptr<ShardEndpoint>> shards,
             std::vector<std::unique_ptr<ShardEndpoint>> replicas)
    : opt_(opt),
      shards_(std::move(shards)),
      replicas_(std::move(replicas)),
      health_(static_cast<int>(shards_.size()), opt.health),
      rng_(opt.seed) {
  replica_live_.assign(replicas_.size(), 1);
}

Fleet::~Fleet() = default;

std::shared_lock<std::shared_mutex> Fleet::reader_lock() const {
  std::lock_guard gate(gate_);
  return std::shared_lock(mu_);
}

std::unique_lock<std::shared_mutex> Fleet::writer_lock() {
  std::lock_guard gate(gate_);
  return std::unique_lock(mu_);
}

void Fleet::on_shard_failure(int shard) {
  if (health_.note_failure(shard) == ShardState::down) {
    std::lock_guard lock(pending_mu_);
    pending_failover_.insert(shard);
  }
}

Fleet::CallResult Fleet::call_shard(int shard, const std::string& line,
                                    double timeout_ms) {
  CallResult r;
  ShardEndpoint* ep = shards_[static_cast<std::size_t>(shard)].get();
  if (ep == nullptr) {
    on_shard_failure(shard);
    return r;
  }
  std::string resp;
  if (!ep->call(line, timeout_ms, &resp) || !sane_reply(resp)) {
    on_shard_failure(shard);
    return r;
  }
  health_.note_success(shard);
  r.ok = true;
  r.response = std::move(resp);
  return r;
}

double Fleet::jittered_backoff(int attempt) {
  std::lock_guard lock(stats_mu_);
  return support::retry_backoff_ms(opt_.retry, attempt, &rng_);
}

Fleet::CallResult Fleet::call_shard_retry(int shard, const std::string& line,
                                          double timeout_ms) {
  CallResult last = call_shard(shard, line, timeout_ms);
  for (int attempt = 0; attempt < opt_.retry.retries; ++attempt) {
    const bool retryable =
        !last.ok || retryable_code(err_code(last.response));
    if (!retryable) return last;
    // A shard the health ladder already declared down will not answer a
    // tighter retry loop either — bail to the failover path instead.
    if (health_.state(shard) == ShardState::down) return last;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        jittered_backoff(attempt)));
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.retries;
    }
    last = call_shard(shard, line, timeout_ms);
  }
  return last;
}

Fleet::CallResult Fleet::call_replica(int replica, const std::string& line,
                                      double timeout_ms) {
  CallResult r;
  if (!replica_live_[static_cast<std::size_t>(replica)]) return r;
  std::string resp;
  if (!replicas_[static_cast<std::size_t>(replica)]->call(line, timeout_ms,
                                                          &resp) ||
      !sane_reply(resp))
    return r;
  r.ok = true;
  r.response = std::move(resp);
  return r;
}

Fleet::CallResult Fleet::any_replica(const std::string& line,
                                     double timeout_ms) {
  for (int i = 0; i < replica_count(); ++i) {
    CallResult r = call_replica(i, line, timeout_ms);
    if (r.ok) return r;
  }
  return {};
}

std::string Fleet::stamp(std::string response) {
  if (is_ok(response))
    response = with_field(response, "epoch", std::to_string(epoch_));
  if (is_degraded(response)) {
    std::lock_guard lock(stats_mu_);
    ++stats_.degraded_replies;
  }
  return response;
}

std::string Fleet::handle_line(const std::string& line) {
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.requests;
  }
  const ParsedRequest p = parse_request(line);
  if (!p.ok) {
    if (p.code.empty()) return "";  // blank / comment
    return err_line(p.code, p.error);
  }
  const Request& r = p.request;
  switch (r.verb) {
    case Verb::kLoad:
      return do_load(r.path);
    case Verb::kArrival: {
      const auto lock = reader_lock();
      return do_arrival(line, r.net);
    }
    case Verb::kCorners:
    case Verb::kSlack: {
      // Whole-graph verbs: shard slices refuse them, replicas hold the
      // full design and receive every mutation, so they answer exactly.
      const auto lock = reader_lock();
      if (!routing_)
        return err_line("NODESIGN", "no design loaded; send LOAD first");
      return do_replica_read(line);
    }
    case Verb::kCritPath: {
      const auto lock = reader_lock();
      return do_critpath(r);
    }
    case Verb::kResize:
      return do_resize(line, r.stage);
    case Verb::kUpdate:
      return do_update(line);
    case Verb::kStats:
      return do_stats();
    case Verb::kHealth:
      return health_line();
    case Verb::kBoundary:
    case Verb::kSetArr:
      return err_line("UNSUPPORTED",
                      "internal fleet verb; address a shard directly");
    case Verb::kShutdown:
      broadcast_shutdown();
      return ok_line("bye");
  }
  return err_line("INTERNAL", "unhandled verb");
}

std::string Fleet::do_load(const std::string& path) {
  std::string error;
  // Heavy: parse + characterize + partition, outside the lock so reads
  // against the previous design stay servable meanwhile.
  std::unique_ptr<Routing> routing =
      build_routing(path, shard_count(), &error);
  if (!routing) return err_line("LOAD", error);

  auto lock = writer_lock();
  routing_ = std::move(routing);
  // Any failure below leaves the fleet unloaded (a half-loaded fleet
  // must refuse queries, not serve a mix of old and new designs).
  const auto fail_load = [this](const std::string& code,
                                const std::string& message) {
    routing_.reset();
    deck_.clear();
    loaded_mirror_.store(false, std::memory_order_relaxed);
    return err_line(code, message);
  };
  // Fan LOAD out to every shard and replica in parallel (each endpoint
  // serializes its own calls; distinct endpoints proceed concurrently).
  const int n = shard_count();
  const int nr = replica_count();
  std::vector<CallResult> shard_r(static_cast<std::size_t>(n));
  std::vector<CallResult> rep_r(static_cast<std::size_t>(nr));
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n + nr));
    for (int s = 0; s < n; ++s)
      threads.emplace_back([this, s, &path, &shard_r] {
        shard_r[static_cast<std::size_t>(s)] =
            call_shard_retry(s, "LOAD " + path, opt_.load_timeout_ms);
      });
    for (int i = 0; i < nr; ++i)
      threads.emplace_back([this, i, &path, &rep_r] {
        rep_r[static_cast<std::size_t>(i)] =
            call_replica(i, "LOAD " + path, opt_.load_timeout_ms);
      });
    for (auto& t : threads) t.join();
  }
  std::uint64_t evals = 0;
  for (int s = 0; s < n; ++s) {
    const CallResult& cr = shard_r[static_cast<std::size_t>(s)];
    if (!cr.ok)
      return fail_load("SHARD_DOWN",
                       std::to_string(s) + " did not answer LOAD");
    if (!is_ok(cr.response)) {
      const std::string resp = cr.response;  // shard's own diagnostic
      fail_load("LOAD", "");
      return resp;
    }
    evals += std::strtoull(response_field(cr.response, "evals").c_str(),
                           nullptr, 10);
  }
  for (int i = 0; i < nr; ++i) {
    const CallResult& cr = rep_r[static_cast<std::size_t>(i)];
    // A replica that failed LOAD is dropped from rotation, not fatal:
    // the shards alone still serve (hedging/failover just lose cover).
    replica_live_[static_cast<std::size_t>(i)] =
        cr.ok && is_ok(cr.response) ? 1 : 0;
  }
  std::uint64_t sweep_evals = 0;
  std::string worst;
  if (!sweep_boundaries(&sweep_evals, &worst, &error))
    return fail_load("SHARD_DOWN", "boundary exchange failed: " + error);
  evals += sweep_evals;
  deck_ = path;
  mutation_log_.clear();
  ++epoch_;
  epoch_mirror_.store(epoch_, std::memory_order_relaxed);
  loaded_mirror_.store(true, std::memory_order_relaxed);
  return ok_line("epoch=" + std::to_string(epoch_) +
                 " shards=" + std::to_string(n) +
                 " replicas=" + std::to_string(nr) +
                 " stages=" + std::to_string(routing_->total_stages) +
                 " nets=" + std::to_string(routing_->nl.net_count()) +
                 " evals=" + std::to_string(evals) + " worst=" + worst);
}

bool Fleet::inject_entries(const std::string& boundary_resp,
                           bool force_degraded, std::string* error) {
  std::vector<std::string> entries;
  split_list(response_field(boundary_resp, "nets"), ';', &entries);
  std::vector<std::string> fields;
  std::string net;
  std::unordered_set<int> touched;
  for (const std::string& e : entries) {
    if (e.empty()) continue;
    if (!rsplit(e, 8, &net, &fields)) {
      *error = "malformed boundary entry: " + e;
      return false;
    }
    const auto id = routing_->nl.find_net(net);
    if (!id) continue;
    routing_->boundary_cache[*id] = fields;
    if (force_degraded) {
      fields[3] = "1";
      fields[7] = "1";
    }
    std::string line = "SETARR " + net;
    for (const std::string& f : fields) {
      line += ' ';
      line += f;
    }
    const auto cit = routing_->consumers_of.find(*id);
    if (cit == routing_->consumers_of.end()) continue;
    for (const int t : cit->second) {
      if (health_.state(t) == ShardState::down) continue;
      const CallResult cr = call_shard_retry(t, line, opt_.call_timeout_ms);
      if (!cr.ok || !is_ok(cr.response)) {
        *error = "SETARR into shard " + std::to_string(t) + " failed";
        return false;
      }
    }
  }
  return true;
}

bool Fleet::sweep_boundaries(std::uint64_t* evals, std::string* worst_raw,
                             std::string* error) {
  // One forward pass: by construction every cross-shard edge points to a
  // higher shard, so once shard s runs UPDATE after all its injections,
  // its exports (and its local worst) are final.
  double worst = 0.0;
  bool have_worst = false;
  *evals = 0;
  for (int s = 0; s < shard_count(); ++s) {
    if (health_.state(s) == ShardState::down) {
      *error = "shard " + std::to_string(s) + " is down";
      return false;
    }
    const CallResult up = call_shard_retry(s, "UPDATE", opt_.load_timeout_ms);
    if (!up.ok || !is_ok(up.response)) {
      *error = "UPDATE on shard " + std::to_string(s) + " failed";
      return false;
    }
    *evals += std::strtoull(response_field(up.response, "evals").c_str(),
                            nullptr, 10);
    const std::string w = response_field(up.response, "worst");
    const double wv = std::strtod(w.c_str(), nullptr);
    if (!have_worst || wv > worst) {
      worst = wv;
      *worst_raw = w;  // raw text: the reply never reprints the double
      have_worst = true;
    }
    if (routing_->map.boundary_of[static_cast<std::size_t>(s)].empty())
      continue;
    const CallResult b = call_shard_retry(s, "BOUNDARY", opt_.call_timeout_ms);
    if (!b.ok || !is_ok(b.response)) {
      *error = "BOUNDARY on shard " + std::to_string(s) + " failed";
      return false;
    }
    if (!inject_entries(b.response, /*force_degraded=*/false, error))
      return false;
  }
  if (!have_worst) *worst_raw = format_double(0.0);
  return true;
}

std::string Fleet::do_arrival(const std::string& line,
                              const std::string& net) {
  if (!routing_)
    return err_line("NODESIGN", "no design loaded; send LOAD first");
  const auto id = routing_->nl.find_net(net);
  if (!id) return err_line("NOTFOUND", "unknown net: " + net);
  const auto it = routing_->owner_of_net.find(*id);
  if (it == routing_->owner_of_net.end()) {
    // Primary input or rail: no owning shard. A replica has it; failing
    // that, any shard whose slice consumes it does.
    const CallResult rr = any_replica(line, opt_.call_timeout_ms);
    if (rr.ok) return stamp(rr.response);
    for (int s = 0; s < shard_count(); ++s) {
      if (health_.state(s) == ShardState::down) continue;
      const CallResult cr = call_shard_retry(s, line, opt_.call_timeout_ms);
      if (cr.ok && !is_err(cr.response, "NOTFOUND"))
        return stamp(cr.response);
    }
    return err_line("NOTFOUND", "no endpoint could answer for net: " + net);
  }
  const int owner = it->second;
  const ShardState st = health_.state(owner);
  if (st == ShardState::down || st == ShardState::warming) {
    // Failover: the replica's answer is exact (it saw every mutation)
    // but the fleet is degraded around this net's owner — say so.
    const CallResult rr = any_replica(line, opt_.call_timeout_ms);
    if (rr.ok) return stamp(degrade_response(rr.response));
    return err_line("SHARD_DOWN", std::to_string(owner) +
                                      " is down and no replica answered");
  }
  // Bounded hedging: the owner gets hedge_ms to answer before the read
  // is hedged to a replica (one hedge per request, never a stampede).
  const bool can_hedge = opt_.hedge_ms > 0.0 && replica_count() > 0;
  const double primary_ms =
      can_hedge ? std::min(opt_.hedge_ms, opt_.call_timeout_ms)
                : opt_.call_timeout_ms;
  const CallResult cr = call_shard_retry(owner, line, primary_ms);
  if (cr.ok) return stamp(cr.response);
  if (replica_count() > 0) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.hedged_reads;
    }
    const CallResult rr = any_replica(line, opt_.call_timeout_ms);
    if (rr.ok) {
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.hedge_wins;
      }
      // If the failed calls just took the owner down, the answer is
      // served around a dead shard — tag it; a merely-slow owner's
      // hedge stays exact-and-nominal.
      std::string resp = rr.response;
      if (health_.state(owner) == ShardState::down)
        resp = degrade_response(resp);
      return stamp(resp);
    }
  }
  return err_line("SHARD_DOWN",
                  std::to_string(owner) + " did not answer and no replica "
                                          "covered the read");
}

std::string Fleet::do_replica_read(const std::string& line) {
  const CallResult rr = any_replica(line, opt_.call_timeout_ms);
  if (rr.ok) return stamp(rr.response);
  if (replica_count() == 0)
    return err_line("UNSUPPORTED",
                    "verb needs a full-design replica (start the router "
                    "with --replicas)");
  return err_line("SHARD_DOWN", "no replica answered");
}

std::string Fleet::do_critpath(const Request& r) {
  if (!routing_)
    return err_line("NODESIGN", "no design loaded; send LOAD first");
  if (!health_.all_healthy()) {
    // A down shard may own the worst endpoint or a path segment; the
    // replica's full-graph answer is exact but produced around a hole.
    const CallResult rr = any_replica(
        r.net.empty()
            ? std::string("CRITPATH")
            : "CRITPATH " + r.net +
                  (r.path_edge ? std::string(" ") + r.path_edge : ""),
        opt_.call_timeout_ms);
    if (rr.ok) return stamp(degrade_response(rr.response));
    return err_line("SHARD_DOWN",
                    "fleet degraded and no replica answered CRITPATH");
  }
  std::string worst;
  std::vector<PathStep> steps;
  if (r.net.empty()) {
    // Scatter: every shard's local worst; the global worst endpoint
    // lives on the shard with the maximum (ties break to the lowest
    // shard, matching the full engine's first-strictly-greater scan).
    bool have = false;
    double best = 0.0;
    for (int s = 0; s < shard_count(); ++s) {
      const CallResult cr =
          call_shard_retry(s, "CRITPATH", opt_.call_timeout_ms);
      if (!cr.ok)
        return err_line("SHARD_DOWN",
                        std::to_string(s) + " did not answer CRITPATH");
      if (!is_ok(cr.response)) continue;  // e.g. shard with no endpoints
      std::string w;
      std::vector<PathStep> local;
      if (!parse_path_response(cr.response, &w, &local)) continue;
      const double wv = std::strtod(w.c_str(), nullptr);
      if (!have || wv > best) {
        best = wv;
        worst = w;
        steps = std::move(local);
        have = true;
      }
    }
    if (!have) return err_line("NOTFOUND", "no shard reported a path");
  } else {
    const auto id = routing_->nl.find_net(r.net);
    if (!id) return err_line("NOTFOUND", "unknown net: " + r.net);
    const auto it = routing_->owner_of_net.find(*id);
    if (it == routing_->owner_of_net.end())
      return err_line("NOTFOUND",
                      "net has no driving stage: " + r.net);
    std::string q = "CRITPATH " + r.net;
    if (r.path_edge) {
      q += ' ';
      q += r.path_edge;
    }
    const CallResult cr = call_shard_retry(it->second, q,
                                           opt_.call_timeout_ms);
    if (!cr.ok)
      return err_line("SHARD_DOWN", std::to_string(it->second) +
                                        " did not answer CRITPATH");
    if (!is_ok(cr.response)) return stamp(cr.response);
    if (!parse_path_response(cr.response, &worst, &steps))
      return err_line("INTERNAL", "unparsable shard path reply");
  }
  // Gather: while the path origin is a boundary input (stage -1, not a
  // true primary input), ask the upstream owner for the segment feeding
  // that exact (net, edge) arrival and graft it on. The boundary step
  // appears in both segments; the upstream copy wins because it carries
  // the true driving stage — reproducing the single-process path.
  int guard = shard_count() + 2;
  while (guard-- > 0 && !steps.empty() && steps.front().stage == "-1") {
    const PathStep origin = steps.front();
    const auto id = routing_->nl.find_net(origin.net);
    if (!id || routing_->primary_inputs.count(*id)) break;
    const auto it = routing_->owner_of_net.find(*id);
    if (it == routing_->owner_of_net.end()) break;
    const CallResult cr = call_shard_retry(
        it->second, "CRITPATH " + origin.net + " " + origin.edge,
        opt_.call_timeout_ms);
    if (!cr.ok || !is_ok(cr.response))
      return err_line("SHARD_DOWN",
                      std::to_string(it->second) +
                          " did not answer the path stitch for " + origin.net);
    std::string seg_worst;
    std::vector<PathStep> seg;
    if (!parse_path_response(cr.response, &seg_worst, &seg) || seg.size() < 2)
      break;
    steps.erase(steps.begin());
    steps.insert(steps.begin(), seg.begin(), seg.end());
  }
  std::string resp = format_path_reply(epoch_, worst, steps);
  return stamp(std::move(resp));
}

std::string Fleet::do_resize(const std::string& line, int stage) {
  auto lock = writer_lock();
  if (!routing_)
    return err_line("NODESIGN", "no design loaded; send LOAD first");
  const auto down = health_.down_shards();
  if (!down.empty()) {
    // Consistent-or-refused: a mutation applied around a dead shard
    // would tear the fleet's state (the dead shard re-warms into a
    // different design than its peers answered from).
    std::lock_guard slock(stats_mu_);
    ++stats_.refused_mutations;
    return err_line("SHARD_DOWN",
                    std::to_string(down.front()) +
                        " is down; mutations refused until the fleet "
                        "re-converges");
  }
  if (stage < 0 ||
      static_cast<std::size_t>(stage) >= routing_->map.shard_of.size())
    return err_line("ARG", "stage index out of range: " +
                               std::to_string(stage));
  const int owner = routing_->map.shard_of[static_cast<std::size_t>(stage)];
  const CallResult cr = call_shard_retry(owner, line, opt_.call_timeout_ms);
  if (!cr.ok)
    return err_line("SHARD_DOWN",
                    std::to_string(owner) + " did not answer RESIZE");
  if (!is_ok(cr.response)) return stamp(cr.response);
  // Replicas replay every mutation so their full-design answers stay
  // exact; one that cannot is dropped from rotation, not left stale.
  for (int i = 0; i < replica_count(); ++i) {
    if (!replica_live_[static_cast<std::size_t>(i)]) continue;
    const CallResult rr = call_replica(i, line, opt_.call_timeout_ms);
    if (!rr.ok || !is_ok(rr.response))
      replica_live_[static_cast<std::size_t>(i)] = 0;
  }
  mutation_log_.push_back(line);
  ++epoch_;
  epoch_mirror_.store(epoch_, std::memory_order_relaxed);
  return stamp(cr.response);
}

std::string Fleet::do_update(const std::string& line) {
  auto lock = writer_lock();
  if (!routing_)
    return err_line("NODESIGN", "no design loaded; send LOAD first");
  const auto down = health_.down_shards();
  if (!down.empty()) {
    std::lock_guard slock(stats_mu_);
    ++stats_.refused_mutations;
    return err_line("SHARD_DOWN",
                    std::to_string(down.front()) +
                        " is down; mutations refused until the fleet "
                        "re-converges");
  }
  std::uint64_t evals = 0;
  std::string worst, error;
  if (!sweep_boundaries(&evals, &worst, &error))
    return err_line("SHARD_DOWN", "boundary exchange failed: " + error);
  for (int i = 0; i < replica_count(); ++i) {
    if (!replica_live_[static_cast<std::size_t>(i)]) continue;
    const CallResult rr = call_replica(i, line, opt_.load_timeout_ms);
    if (!rr.ok || !is_ok(rr.response))
      replica_live_[static_cast<std::size_t>(i)] = 0;
  }
  mutation_log_.push_back(line);
  ++epoch_;
  epoch_mirror_.store(epoch_, std::memory_order_relaxed);
  return ok_line("epoch=" + std::to_string(epoch_) +
                 " evals=" + std::to_string(evals) + " worst=" + worst);
}

std::string Fleet::do_stats() {
  const auto lock = reader_lock();
  FleetStats s = stats();
  std::string states;
  for (const ShardState st : health_.snapshot()) {
    if (!states.empty()) states += ',';
    states += shard_state_name(st);
  }
  int live_replicas = 0;
  for (const char l : replica_live_) live_replicas += l ? 1 : 0;
  return ok_line(
      "epoch=" + std::to_string(epoch_) + " loaded=" +
      (routing_ ? "1" : "0") + " shards=" + std::to_string(shard_count()) +
      " replicas=" + std::to_string(live_replicas) + " states=" + states +
      " requests=" + std::to_string(s.requests) +
      " retries=" + std::to_string(s.retries) +
      " hedged=" + std::to_string(s.hedged_reads) +
      " hedge_wins=" + std::to_string(s.hedge_wins) +
      " degraded=" + std::to_string(s.degraded_replies) +
      " refused_mutations=" + std::to_string(s.refused_mutations) +
      " failovers=" + std::to_string(s.failovers) +
      " restarts=" + std::to_string(s.restarts) +
      " refused_restarts=" + std::to_string(s.refused_restarts) +
      " supervises=" + std::to_string(s.supervise_passes) +
      " mutations_logged=" + std::to_string(mutation_log_.size()));
}

std::string Fleet::health_line() const {
  std::string states;
  for (const ShardState st : health_.snapshot()) {
    if (!states.empty()) states += ',';
    states += shard_state_name(st);
  }
  return ok_line(
      "health=1 role=router loaded=" +
      std::string(loaded_mirror_.load(std::memory_order_relaxed) ? "1"
                                                                 : "0") +
      " epoch=" +
      std::to_string(epoch_mirror_.load(std::memory_order_relaxed)) +
      " shards=" + std::to_string(shard_count()) + " states=" + states);
}

void Fleet::inject_degraded(int shard) {
  // Last-known boundary values, re-tagged degraded=1: downstream cones
  // keep answering with the best available numbers, and the engine's
  // sticky degraded flag marks every net that transitively depends on
  // the dead shard — exactly the nets whose answers may now be stale.
  std::unordered_set<int> touched;
  for (const netlist::NetId n :
       routing_->map.boundary_of[static_cast<std::size_t>(shard)]) {
    const auto cache = routing_->boundary_cache.find(n);
    if (cache == routing_->boundary_cache.end()) continue;
    std::vector<std::string> fields = cache->second;
    fields[3] = "1";
    fields[7] = "1";
    std::string line = "SETARR " + routing_->nl.net_name(n);
    for (const std::string& f : fields) {
      line += ' ';
      line += f;
    }
    const auto cit = routing_->consumers_of.find(n);
    if (cit == routing_->consumers_of.end()) continue;
    for (const int t : cit->second) {
      if (t == shard || health_.state(t) == ShardState::down) continue;
      const CallResult cr = call_shard_retry(t, line, opt_.call_timeout_ms);
      if (cr.ok && is_ok(cr.response)) touched.insert(t);
    }
  }
  for (const int t : touched)
    call_shard_retry(t, "UPDATE", opt_.load_timeout_ms);
}

bool Fleet::rewarm(int shard, std::string* error) {
  // The restarted process is empty: replay LOAD and the slice of the
  // mutation log it owns. The boundary resync (and degraded-flag clear)
  // happens in the caller's fleet-wide sweep afterwards.
  CallResult cr = call_shard_retry(shard, "LOAD " + deck_,
                                   opt_.load_timeout_ms);
  if (!cr.ok || !is_ok(cr.response)) {
    *error = "re-warm LOAD on shard " + std::to_string(shard) + " failed";
    return false;
  }
  for (const std::string& m : mutation_log_) {
    const ParsedRequest p = parse_request(m);
    if (!p.ok) continue;
    if (p.request.verb == Verb::kResize) {
      const std::size_t st = static_cast<std::size_t>(p.request.stage);
      if (st >= routing_->map.shard_of.size() ||
          routing_->map.shard_of[st] != shard)
        continue;
      cr = call_shard_retry(shard, m, opt_.call_timeout_ms);
      if (!cr.ok || !is_ok(cr.response)) {
        *error = "mutation replay on shard " + std::to_string(shard) +
                 " failed";
        return false;
      }
    }
    // UPDATE lines need no replay: the fleet-wide sweep re-propagates.
  }
  return true;
}

std::string Fleet::supervise() {
  auto lock = writer_lock();
  {
    std::lock_guard slock(stats_mu_);
    ++stats_.supervise_passes;
  }
  const int n = shard_count();
  // Probe: HEALTH answers off the admission queue within the probe
  // deadline, so "no answer" means failing, not merely saturated.
  for (int s = 0; s < n; ++s) {
    ShardEndpoint* ep = shards_[static_cast<std::size_t>(s)].get();
    std::string resp;
    const bool ok = ep != nullptr &&
                    ep->call("HEALTH", opt_.health.probe_timeout_ms, &resp) &&
                    sane_reply(resp) && is_ok(resp);
    if (ok) {
      health_.note_success(s);
    } else {
      on_shard_failure(s);
    }
  }
  // Degrade: newly-down shards get their consumers' inputs re-tagged.
  std::set<int> pending;
  {
    std::lock_guard plock(pending_mu_);
    pending.swap(pending_failover_);
  }
  int degraded_now = 0;
  for (const int k : pending) {
    if (health_.state(k) != ShardState::down) continue;
    if (degraded_marked_.count(k)) continue;
    if (routing_) inject_degraded(k);
    degraded_marked_.insert(k);
    ++degraded_now;
    std::lock_guard slock(stats_mu_);
    ++stats_.failovers;
  }
  // Restart + re-warm. All down shards are restarted and replayed
  // first, then one fleet-wide sweep resyncs boundaries and clears the
  // degraded flags — shards come back healthy together, bit-identical.
  const auto down = health_.down_shards();
  std::vector<int> warmed;
  int refused = 0;
  for (const int k : down) {
    if (!restart_) {
      ++refused;
      continue;
    }
    std::unique_ptr<ShardEndpoint> ep = restart_(k);
    if (!ep) {
      ++refused;
      continue;
    }
    shards_[static_cast<std::size_t>(k)] = std::move(ep);
    health_.mark(k, ShardState::warming);
    std::string error;
    if (!routing_ || rewarm(k, &error)) {
      // Unloaded fleet: a fresh empty shard is already in sync.
      warmed.push_back(k);
    } else {
      health_.mark(k, ShardState::down);
    }
  }
  if (refused > 0) {
    std::lock_guard slock(stats_mu_);
    stats_.refused_restarts += static_cast<std::uint64_t>(refused);
  }
  int recovered = 0;
  if (!warmed.empty()) {
    bool converged = true;
    if (routing_) {
      std::uint64_t evals = 0;
      std::string worst, error;
      converged = sweep_boundaries(&evals, &worst, &error);
    }
    for (const int k : warmed) {
      health_.mark(k, converged ? ShardState::healthy : ShardState::down);
      if (converged) {
        degraded_marked_.erase(k);
        ++recovered;
        std::lock_guard slock(stats_mu_);
        ++stats_.restarts;
      }
    }
  }
  return ok_line("supervised=1 shards=" + std::to_string(n) +
                 " degraded_now=" + std::to_string(degraded_now) +
                 " recovered=" + std::to_string(recovered) +
                 " refused_restarts=" + std::to_string(refused) +
                 " down=" + std::to_string(health_.down_shards().size()));
}

void Fleet::broadcast_shutdown() {
  const auto lock = reader_lock();
  std::string resp;
  for (const auto& ep : shards_)
    if (ep) ep->call("SHUTDOWN", opt_.call_timeout_ms, &resp);
  for (const auto& ep : replicas_)
    if (ep) ep->call("SHUTDOWN", opt_.call_timeout_ms, &resp);
}

bool Fleet::loaded() const {
  const auto lock = reader_lock();
  return routing_ != nullptr;
}

std::uint64_t Fleet::epoch() const {
  const auto lock = reader_lock();
  return epoch_;
}

FleetStats Fleet::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace qwm::service
