#include "qwm/service/design_db.h"

#include <algorithm>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/frontend/elaborate.h"
#include "qwm/frontend/frontend.h"
#include "qwm/netlist/apply_models.h"
#include "qwm/netlist/parser.h"
#include "qwm/service/shard_map.h"

namespace qwm::service {

namespace {

Status fail(const std::string& code, const std::string& message) {
  Status s;
  s.ok = false;
  s.code = code;
  s.message = message;
  return s;
}

const Status kNoDesign = fail("NODESIGN", "no design loaded; send LOAD first");

}  // namespace

/// One loaded design: the flat netlist (for net-name lookups), the
/// process + characterized device models the engine points into, and the
/// engine itself. Members are ordered so the engine (which holds
/// non-owning model pointers) is destroyed first and constructed last.
struct DesignDb::Session {
  netlist::FlatNetlist nl;
  device::Process proc = device::Process::cmosp35();
  std::unique_ptr<device::TabularDeviceModel> nmos;
  std::unique_ptr<device::TabularDeviceModel> pmos;
  /// Multi-corner sessions own per-corner model pairs here instead of
  /// nmos/pmos (declared before the engine for destruction order).
  std::unique_ptr<device::CornerLibrary> corners;
  std::unique_ptr<sta::StaEngine> engine;

  // Shard-mode bookkeeping (empty in single-shard sessions). Wire stage
  // indices are always *global* (the full-design partition's); the
  // engine's are local to the slice.
  std::vector<int> local_to_global;
  std::unordered_map<int, int> global_to_local;
  /// Nets this shard exports (sorted by NetId).
  std::vector<netlist::NetId> boundary_out;
  /// Slice primary inputs driven elsewhere — awaiting set_arrival.
  std::vector<netlist::NetId> boundary_in;

  int to_global(int local) const {
    return local_to_global.empty() ? local
                                   : local_to_global[static_cast<std::size_t>(
                                         local)];
  }
};

DesignDb::DesignDb(DesignDbOptions opt) : opt_(opt) {}
DesignDb::~DesignDb() = default;

std::shared_lock<std::shared_mutex> DesignDb::reader_lock() const {
  // Queue behind any writer parked in writer_lock(); the gate is
  // released as soon as the shared lock is held.
  std::lock_guard gate(gate_);
  return std::shared_lock(mu_);
}

std::unique_lock<std::shared_mutex> DesignDb::writer_lock() {
  // Holding the gate while waiting stops new readers from piling onto
  // mu_, so the writer acquires it once in-flight readers drain.
  std::lock_guard gate(gate_);
  return std::unique_lock(mu_);
}

LoadReply DesignDb::load_file(const std::string& path) {
  if (frontend::is_frontend_source(path)) return load_frontend(path);
  return load_parsed(path, /*is_file=*/true, path);
}

LoadReply DesignDb::load_text(const std::string& text,
                              const std::string& name) {
  return load_parsed(text, /*is_file=*/false, name);
}

LoadReply DesignDb::load_parsed(const std::string& text_or_path, bool is_file,
                                const std::string& name) {
  LoadReply reply;
  // Parse + characterize + partition + analyze outside the lock: LOAD is
  // the heaviest verb and queries against the old session stay servable
  // until the new one swaps in.
  netlist::ParseResult parsed = is_file
                                    ? netlist::parse_spice_file(text_or_path)
                                    : netlist::parse_spice(text_or_path);
  if (!parsed.ok()) {
    // First error carries its file:line diagnostic from the parser; for
    // in-memory decks, relabel the parser's "<deck>" placeholder with
    // the caller-provided name.
    std::string msg = parsed.errors.front();
    if (!is_file && msg.rfind("<deck>:", 0) == 0)
      msg = name + msg.substr(6);
    reply.status = fail("LOAD", msg);
    return reply;
  }
  auto session = std::make_unique<Session>();
  session->nl = std::move(parsed.netlist);
  for (auto& w : netlist::apply_model_cards(session->nl, &session->proc))
    reply.warnings.push_back(std::move(w));
  device::ModelSet models;
  if (opt_.corners) {
    // One characterized model pair per corner; the typical set drives
    // partitioning (stage structure is corner-independent).
    session->corners = std::make_unique<device::CornerLibrary>(session->proc);
    models = session->corners->set(device::Corner::typical);
  } else {
    session->nmos = std::make_unique<device::TabularDeviceModel>(
        device::MosType::nmos, session->proc);
    session->pmos = std::make_unique<device::TabularDeviceModel>(
        device::MosType::pmos, session->proc);
    models = device::ModelSet{session->nmos.get(), session->pmos.get(),
                              &session->proc};
  }
  circuit::PartitionedDesign design =
      circuit::partition_netlist(session->nl, models);
  return finish_load(std::move(session), std::move(design), models,
                     std::move(reply), name);
}

LoadReply DesignDb::load_frontend(const std::string& source) {
  LoadReply reply;
  // Like load_parsed, all heavy work (generation / parsing, model
  // characterization, elaboration, full analysis) runs outside the lock.
  frontend::BlifResult loaded = frontend::load_gate_netlist(source);
  for (auto& w : loaded.warnings) reply.warnings.push_back(std::move(w));
  if (!loaded.ok()) {
    reply.status = fail("LOAD", loaded.errors.front());
    return reply;
  }
  auto session = std::make_unique<Session>();
  device::ModelSet models;
  if (opt_.corners) {
    session->corners = std::make_unique<device::CornerLibrary>(session->proc);
    models = session->corners->set(device::Corner::typical);
  } else {
    session->nmos = std::make_unique<device::TabularDeviceModel>(
        device::MosType::nmos, session->proc);
    session->pmos = std::make_unique<device::TabularDeviceModel>(
        device::MosType::pmos, session->proc);
    models = device::ModelSet{session->nmos.get(), session->pmos.get(),
                              &session->proc};
  }
  frontend::ElaboratedDesign elab = frontend::elaborate(loaded.netlist, models);
  session->nl = std::move(elab.nl);
  return finish_load(std::move(session), std::move(elab.design), models,
                     std::move(reply), source);
}

LoadReply DesignDb::finish_load(std::unique_ptr<Session> session,
                                circuit::PartitionedDesign design,
                                const device::ModelSet& models,
                                LoadReply reply, const std::string& name) {
  for (auto& w : design.warnings) reply.warnings.push_back(std::move(w));
  if (design.stages.empty()) {
    reply.status = fail("LOAD", name + ": deck contains no logic stages");
    return reply;
  }
  reply.total_stages = design.stages.size();
  if (opt_.shard_count > 1) {
    // Slice the full partition down to this shard's stages. The map is a
    // pure function of (design, shard_count), so every process of the
    // fleet computes the same ownership without exchanging metadata.
    const ShardMap map = build_shard_map(design, opt_.shard_count);
    if (!map.acyclic) {
      reply.status = fail(
          "LOAD", name + ": cyclic stage graph cannot be sharded (levels "
                         "undefined); serve it single-shard");
      return reply;
    }
    if (opt_.shard_index < 0 || opt_.shard_index >= map.shard_count) {
      reply.status = fail(
          "LOAD", name + ": shard " + std::to_string(opt_.shard_index) +
                      " of " + std::to_string(opt_.shard_count) +
                      " has no stages (design too small for the fleet)");
      return reply;
    }
    session->local_to_global =
        map.stages_of[static_cast<std::size_t>(opt_.shard_index)];
    session->boundary_out =
        map.boundary_of[static_cast<std::size_t>(opt_.shard_index)];
    for (std::size_t li = 0; li < session->local_to_global.size(); ++li)
      session->global_to_local[session->local_to_global[li]] =
          static_cast<int>(li);
    circuit::PartitionedDesign slice =
        circuit::extract_stages(design, session->local_to_global);
    for (const netlist::NetId n : slice.primary_inputs)
      if (design.driver_of.count(n)) session->boundary_in.push_back(n);
    design = std::move(slice);
  }
  session->engine =
      opt_.corners
          ? std::make_unique<sta::StaEngine>(std::move(design),
                                             session->corners->sets(),
                                             opt_.sta)
          : std::make_unique<sta::StaEngine>(std::move(design), models,
                                             opt_.sta);
  // Boundary inputs start invalid — "no answer yet", never a wrong one —
  // until the fleet injects the upstream shard's arrivals.
  for (const netlist::NetId n : session->boundary_in)
    session->engine->set_input_timing(n, sta::NetTiming{});
  reply.evals = session->engine->run();
  for (const auto& w : session->engine->warnings())
    reply.warnings.push_back(w);

  const auto lock = writer_lock();
  session_ = std::move(session);
  reply.epoch = ++epoch_;
  reply.session = ++session_id_;
  reply.stages = session_->engine->design().stages.size();
  reply.nets = session_->nl.net_count();
  reply.worst = session_->engine->worst_arrival();
  reply.shard = opt_.shard_index;
  reply.shards = opt_.shard_count;
  reply.boundary_in = session_->boundary_in.size();
  reply.boundary_out = session_->boundary_out.size();
  return reply;
}

ArrivalReply DesignDb::arrival(const std::string& net) const {
  ArrivalReply reply;
  const auto lock = reader_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  const auto id = session_->nl.find_net(net);
  if (!id) {
    reply.status = fail("NOTFOUND", "unknown net: " + net);
    return reply;
  }
  // Known net without computed timing returns the engine's stable
  // invalid NetTiming — reported as valid=0 fields, never an error.
  reply.timing = session_->engine->timing(*id);
  return reply;
}

CornersReply DesignDb::corners(const std::string& net, double period) const {
  CornersReply reply;
  const auto lock = reader_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  if (opt_.shard_count > 1) {
    reply.status = fail("UNSUPPORTED",
                        "CORNERS needs the full design; ask a replica");
    return reply;
  }
  if (!session_->engine->multi_corner()) {
    reply.status =
        fail("UNSUPPORTED", "corner analysis disabled; start with --corners");
    return reply;
  }
  const auto id = session_->nl.find_net(net);
  if (!id) {
    reply.status = fail("NOTFOUND", "unknown net: " + net);
    return reply;
  }
  for (const device::Corner c : session_->engine->corners()) {
    CornerTimingReply ct;
    ct.corner = c;
    ct.timing = session_->engine->timing(*id, c);
    reply.degraded = reply.degraded || ct.timing.rise.degraded ||
                     ct.timing.fall.degraded;
    reply.corners.push_back(std::move(ct));
  }
  if (period > 0.0)
    reply.setup_hold = session_->engine->setup_hold(*id, period);
  return reply;
}

SlackReply DesignDb::slack(const std::string& net, double period) const {
  SlackReply reply;
  const auto lock = reader_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  if (opt_.shard_count > 1) {
    // Required times propagate *backward* from every endpoint; a slice
    // cannot know the full-graph required time at its cut, so a sharded
    // slack would be silently wrong — refuse instead.
    reply.status =
        fail("UNSUPPORTED", "SLACK needs the full design; ask a replica");
    return reply;
  }
  if (period <= 0.0) {
    reply.status = fail("ARG", "period must be positive");
    return reply;
  }
  const auto id = session_->nl.find_net(net);
  if (!id) {
    reply.status = fail("NOTFOUND", "unknown net: " + net);
    return reply;
  }
  // Per-(epoch, period) memo: writers hold the exclusive lock, so inside
  // the shared region the epoch cannot move under us; slack_mu_ only
  // serializes the memo itself.
  std::lock_guard slack_lock(slack_mu_);
  if (slack_epoch_ != epoch_ || slack_period_ != period) {
    slack_map_ = session_->engine->compute_slacks(period);
    slack_epoch_ = epoch_;
    slack_period_ = period;
    ++slack_misses_;
  } else {
    ++slack_hits_;
    reply.cache_hit = true;
  }
  const auto it = slack_map_.find(*id);
  if (it != slack_map_.end()) reply.slack = it->second;
  const sta::NetTiming& t = session_->engine->timing(*id);
  reply.degraded = t.rise.degraded || t.fall.degraded;
  return reply;
}

CritPathReply DesignDb::critical_path() const {
  CritPathReply reply;
  const auto lock = reader_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  reply.worst = session_->engine->worst_arrival();
  for (const auto& step : session_->engine->critical_path()) {
    CritPathStepReply s;
    s.net = session_->nl.net_name(step.net);
    s.rising = step.rising;
    s.arrival = step.arrival;
    s.stage = step.stage < 0 ? step.stage : session_->to_global(step.stage);
    reply.steps.push_back(std::move(s));
  }
  return reply;
}

CritPathReply DesignDb::critical_path(const std::string& net,
                                      char edge) const {
  CritPathReply reply;
  const auto lock = reader_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  const auto id = session_->nl.find_net(net);
  if (!id) {
    reply.status = fail("NOTFOUND", "unknown net: " + net);
    return reply;
  }
  const sta::NetTiming& t = session_->engine->timing(*id);
  bool rising;
  if (edge == 'R') {
    rising = true;
  } else if (edge == 'F') {
    rising = false;
  } else {
    // Unspecified: the worse valid edge, matching the global worst-path
    // selection rule.
    if (!t.rise.valid() && !t.fall.valid()) {
      reply.status = fail("NOTFOUND", "net has no computed arrival: " + net);
      return reply;
    }
    rising = t.rise.valid() && (!t.fall.valid() || t.rise.time >= t.fall.time);
  }
  const sta::Arrival& a = rising ? t.rise : t.fall;
  if (!a.valid()) {
    reply.status = fail("NOTFOUND", "net has no computed arrival: " + net +
                                        (rising ? " R" : " F"));
    return reply;
  }
  reply.worst = a.time;
  for (const auto& step : session_->engine->critical_path(*id, rising)) {
    CritPathStepReply s;
    s.net = session_->nl.net_name(step.net);
    s.rising = step.rising;
    s.arrival = step.arrival;
    s.stage = step.stage < 0 ? step.stage : session_->to_global(step.stage);
    reply.steps.push_back(std::move(s));
  }
  return reply;
}

BoundaryReply DesignDb::boundary() const {
  BoundaryReply reply;
  const auto lock = reader_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  for (const netlist::NetId n : session_->boundary_out) {
    BoundaryEntry e;
    e.net = session_->nl.net_name(n);
    e.timing = session_->engine->timing(n);
    reply.entries.push_back(std::move(e));
  }
  return reply;
}

MutateReply DesignDb::set_arrival(const std::string& net,
                                  const sta::NetTiming& t) {
  MutateReply reply;
  const auto lock = writer_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  const auto id = session_->nl.find_net(net);
  if (!id) {
    reply.status = fail("NOTFOUND", "unknown net: " + net);
    return reply;
  }
  const auto& pis = session_->engine->design().primary_inputs;
  if (std::find(pis.begin(), pis.end(), *id) == pis.end()) {
    reply.status = fail(
        "ARG", "net is not a primary input of this slice: " + net);
    return reply;
  }
  session_->engine->set_input_timing(*id, t);
  reply.epoch = ++epoch_;
  reply.worst = session_->engine->worst_arrival();
  return reply;
}

MutateReply DesignDb::resize(int stage, int edge, double width) {
  MutateReply reply;
  const auto lock = writer_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.epoch = epoch_;
  // Wire indices are global; shard mode owns only a slice of them.
  int local = stage;
  if (!session_->local_to_global.empty()) {
    const auto it = session_->global_to_local.find(stage);
    if (it == session_->global_to_local.end()) {
      reply.status = fail("NOTOWNED", "stage " + std::to_string(stage) +
                                          " is not owned by shard " +
                                          std::to_string(opt_.shard_index));
      return reply;
    }
    local = it->second;
  }
  const auto& stages = session_->engine->design().stages;
  if (local < 0 || static_cast<std::size_t>(local) >= stages.size()) {
    reply.status = fail("ARG", "stage index out of range: " +
                                   std::to_string(stage));
    return reply;
  }
  const circuit::LogicStage& ls = stages[local].stage;
  if (edge < 0 || static_cast<std::size_t>(edge) >= ls.edge_count()) {
    reply.status =
        fail("ARG", "edge index out of range: " + std::to_string(edge));
    return reply;
  }
  if (ls.edge(static_cast<circuit::EdgeId>(edge)).kind ==
      circuit::DeviceKind::wire) {
    reply.status = fail("ARG", "edge " + std::to_string(edge) +
                                   " is a wire, not a transistor");
    return reply;
  }
  if (width <= 0.0) {
    reply.status = fail("ARG", "width must be positive");
    return reply;
  }
  session_->engine->resize_transistor(local,
                                      static_cast<circuit::EdgeId>(edge),
                                      width);
  reply.epoch = ++epoch_;
  reply.worst = session_->engine->worst_arrival();
  return reply;
}

MutateReply DesignDb::update() {
  MutateReply reply;
  const auto lock = writer_lock();
  if (!session_) {
    reply.status = kNoDesign;
    return reply;
  }
  reply.evals = session_->engine->update();
  reply.epoch = ++epoch_;
  reply.worst = session_->engine->worst_arrival();
  return reply;
}

DbStats DesignDb::stats() const {
  DbStats s;
  const auto lock = reader_lock();
  s.epoch = epoch_;
  s.session = session_id_;
  s.loaded = session_ != nullptr;
  s.schedule = opt_.sta.schedule;
  s.shard = opt_.shard_index;
  s.shards = opt_.shard_count;
  if (session_) {
    s.stages = session_->engine->design().stages.size();
    s.boundary_out = session_->boundary_out.size();
    s.cache = session_->engine->cache_stats();
    s.qwm = session_->engine->qwm_stats();
    s.workspace = session_->engine->workspace_stats();
    s.sched = session_->engine->schedule_stats();
  }
  std::lock_guard slack_lock(slack_mu_);
  s.slack_cache_hits = slack_hits_;
  s.slack_cache_misses = slack_misses_;
  return s;
}

std::uint64_t DesignDb::epoch() const {
  const auto lock = reader_lock();
  return epoch_;
}

bool DesignDb::has_design() const {
  const auto lock = reader_lock();
  return session_ != nullptr;
}

}  // namespace qwm::service
