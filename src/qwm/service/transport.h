// LineTransport — the newline-protocol transport engine, carved out of
// Server so every daemon of the serving fleet (qwm_serve shards and the
// qwm_router front end) shares one transport implementation.
//
// Two transports over one machinery:
//
//  * stdio  — serve_stream(): one client session on an istream/ostream
//    pair, requests answered in order (the scripted-CI mode).
//  * TCP    — listen() + serve(): POSIX sockets on 127.0.0.1, one reader
//    thread per connection, strict request/response per connection,
//    concurrency across connections.
//
// Requests funnel through a *bounded admission queue* drained by worker
// lanes on a support::ThreadPool. A full queue rejects immediately with
// "ERR BUSY" — overload sheds load instead of stalling the readers —
// and a request that waited past deadline_ms is answered "ERR DEADLINE"
// without reaching the handler. The optional *fast handler* runs on the
// reader thread before admission: HEALTH is answered there, so liveness
// probing keeps working when the queue is saturated — a saturated shard
// is slow, not dead, and the router must be able to tell the difference.
//
// Fault injection: the per-instance FaultHook arms the process-level
// fleet sites on the reply path — kDropConnection severs the connection
// instead of replying, kStallReply withholds the reply for magnitude ms
// (past any client deadline), kCorruptReply tears the reply line. Each
// shard of an in-process test fleet carries its own hook, so a test can
// sabotage exactly one shard deterministically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "qwm/support/fault_injection.h"
#include "qwm/support/thread_pool.h"

namespace qwm::service {

struct TransportOptions {
  /// Worker lanes draining the admission queue (request concurrency).
  int threads = 4;
  /// Bounded admission queue capacity; a full queue answers ERR BUSY.
  /// 0 rejects everything (useful to test the overload path).
  int queue_capacity = 64;
  /// > 0: requests that waited in the queue longer than this are
  /// answered ERR DEADLINE instead of being executed.
  double deadline_ms = 0.0;
};

struct TransportStats {
  std::uint64_t busy_rejections = 0;
  std::uint64_t deadline_expirations = 0;
  /// Injected reply faults that fired (observability for fleet tests).
  std::uint64_t dropped_connections = 0;
  std::uint64_t stalled_replies = 0;
  std::uint64_t corrupted_replies = 0;
};

class LineTransport {
 public:
  /// Executes one request line, returning the one-line response ("" =
  /// nothing to write). Runs on a worker lane; must be thread-safe.
  using Handler = std::function<std::string(const std::string& line)>;
  /// Pre-admission hook on the reader thread. Returning true short-
  /// circuits the queue and replies with `*response` immediately; must
  /// be lock-free-ish (never block on the engine).
  using FastHandler =
      std::function<bool(const std::string& line, std::string* response)>;

  explicit LineTransport(TransportOptions opt);
  ~LineTransport();

  LineTransport(const LineTransport&) = delete;
  LineTransport& operator=(const LineTransport&) = delete;

  void set_handler(Handler h) { handler_ = std::move(h); }
  void set_fast_handler(FastHandler h) { fast_handler_ = std::move(h); }

  /// Per-instance reply-path fault hook (see header comment). Configure
  /// before serving.
  support::FaultHook& fault_hook() { return fault_hook_; }

  const TransportOptions& options() const { return opt_; }

  /// Stdio transport: serves requests from `in` until EOF or shutdown.
  /// Responses are written to `out` in request order. Returns 0 on a
  /// clean session.
  int serve_stream(std::istream& in, std::ostream& out);

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) with
  /// SO_REUSEADDR, so a supervised restart can rebind immediately
  /// instead of tripping over the dead process's TIME_WAIT socket.
  /// False on failure; listen_error() then carries strerror(errno).
  bool listen(int port);
  /// Human-readable reason of the last listen() failure ("" if none).
  const std::string& listen_error() const { return listen_error_; }
  int port() const { return port_; }
  /// Accept loop + worker lanes; blocks until request_shutdown().
  /// Requires a successful listen().
  void serve();

  /// Thread-safe: stops accepting, drains in-flight requests, unblocks
  /// every transport.
  void request_shutdown();
  bool shutdown_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  TransportStats stats() const;

 private:
  struct Conn;
  struct Job;

  /// Admission + execution for one request line read by a transport:
  /// enqueue (or shed with BUSY), wait for the worker's response write.
  void submit_and_wait(const std::shared_ptr<Conn>& conn,
                       const std::string& line);
  /// Reply write with the fault-hook ladder applied (stall / corrupt /
  /// drop). All response bytes leave through here.
  void deliver(const std::shared_ptr<Conn>& conn, const std::string& resp);
  void worker_loop();
  void run_workers();  ///< parallel_for the worker lanes (blocks)
  void reader_loop(std::shared_ptr<Conn> conn);
  /// Fast-handler dispatch shared by both transports; true when the
  /// line was fully handled on the reader thread.
  bool try_fast_path(const std::shared_ptr<Conn>& conn,
                     const std::string& line);

  TransportOptions opt_;
  Handler handler_;
  FastHandler fast_handler_;
  support::FaultHook fault_hook_;
  support::ThreadPool pool_;
  std::atomic<bool> stop_{false};

  // Bounded admission queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool queue_closed_ = false;

  mutable std::mutex stats_mu_;
  TransportStats stats_;

  // TCP state.
  int listen_fd_ = -1;
  int port_ = 0;
  std::string listen_error_;
  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
};

}  // namespace qwm::service
