// Deterministic stage-graph sharding for the serving fleet.
//
// A ShardMap assigns every stage of a partitioned design to one of N
// shards by cutting the *level-major* stage order (topological level
// ascending, stage index ascending within a level) into N contiguous
// blocks of near-equal stage count. Because every stage-graph edge goes
// from a strictly lower level to a higher one, contiguous blocks over
// that order make every cross-shard edge point forward (lower shard ->
// higher shard): the fleet can satisfy all boundary dependencies with a
// single sweep — query shard 0's BOUNDARY, inject into shard 1 via
// SETARR, and so on — no iteration, no cycles between shards.
//
// The map is a pure function of (design, shard_count). The router and
// every shard parse the same deck, partition it identically (the parse
// and partition are deterministic), and each call build_shard_map — so
// they agree on stage ownership and boundary nets without exchanging
// any metadata. NetIds are never renumbered (see extract_stages), so a
// net name means the same NetId in every process of the fleet.
#pragma once

#include <vector>

#include "qwm/circuit/partition.h"

namespace qwm::service {

struct ShardMap {
  int shard_count = 1;
  /// False when the stage graph has a cycle (latch loops): levels are
  /// then undefined, cross-shard edges could point backward, and the
  /// fleet refuses to shard the design (single-shard serving still works).
  bool acyclic = true;
  /// Global stage index -> owning shard.
  std::vector<int> shard_of;
  /// Shard -> its global stage indices, in level-major order. This is
  /// the `keep` list each shard passes to circuit::extract_stages.
  std::vector<std::vector<int>> stages_of;
  /// Shard -> nets it drives that stages of *later* shards consume,
  /// sorted by NetId: exactly the arrivals the shard must export
  /// (BOUNDARY) and its consumers must ingest (SETARR).
  std::vector<std::vector<netlist::NetId>> boundary_of;
};

/// Builds the level-major contiguous-block assignment described above.
/// `shard_count` is clamped to [1, stage count].
ShardMap build_shard_map(const circuit::PartitionedDesign& design,
                         int shard_count);

}  // namespace qwm::service
