// qwm_serve dispatch layer.
//
// A Server owns one DesignDb and a LineTransport (see transport.h for
// the admission queue, worker lanes, stdio/TCP plumbing, and the
// reply-path fault hooks). The Server contributes the protocol logic:
// parse a request line, execute it against the db, format the one-line
// reply, and keep per-verb request/error/latency counters.
//
// Queries run under the DesignDb's shared lock; RESIZE/UPDATE/LOAD/
// SETARR transactions serialize on its exclusive lock and bump the
// epoch (see design_db.h). HEALTH is answered on the transport's fast
// path from lock-free mirrors — a saturated or write-locked server
// still proves liveness, which is how the fleet's health tracker tells
// "slow" from "dead".
//
// Per-verb counters plus the busy/deadline shed counts are surfaced
// through the STATS verb.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "qwm/service/design_db.h"
#include "qwm/service/protocol.h"
#include "qwm/service/transport.h"

namespace qwm::service {

struct ServerOptions {
  /// Worker lanes draining the admission queue (request concurrency).
  int threads = 4;
  /// Bounded admission queue capacity; a full queue answers ERR BUSY.
  /// 0 rejects everything (useful to test the overload path).
  int queue_capacity = 64;
  /// > 0: requests that waited in the queue longer than this are
  /// answered ERR DEADLINE instead of being executed.
  double deadline_ms = 0.0;
  /// > 0: a request whose *execution* (not queue wait) exceeds this is
  /// answered "ERR DEGRADED ..." instead of its normal reply — the
  /// graceful-degradation contract for slow solves. Mutating verbs have
  /// already applied by then; retrying them is safe (RESIZE re-stages
  /// the same width, UPDATE finds a clean cone).
  double solve_deadline_ms = 0.0;
  DesignDbOptions db;
};

/// Request/latency accounting of one verb.
struct VerbStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

struct ServerStats {
  VerbStats verb[kVerbCount];
  std::uint64_t busy_rejections = 0;
  std::uint64_t deadline_expirations = 0;
  std::uint64_t malformed = 0;  ///< lines that failed to parse
  /// Requests whose execution overran solve_deadline_ms (ERR DEGRADED).
  std::uint64_t solve_deadline_expirations = 0;
  /// "OK DEGRADED" replies served (fallback-ladder results delivered).
  std::uint64_t degraded_replies = 0;
  /// HEALTH probes answered on the transport fast path.
  std::uint64_t health_probes = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opt = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  DesignDb& db() { return db_; }
  const ServerOptions& options() const { return opt_; }

  /// Per-instance reply-path fault hook (drop/stall/corrupt — see
  /// transport.h). Configure before serving.
  support::FaultHook& fault_hook() { return transport_.fault_hook(); }

  /// Parses and executes one request line, returning the one-line
  /// response. Thread-safe; every transport funnels through this, and
  /// tests / in-process benches may call it directly (no admission
  /// queue or deadline on this path).
  std::string handle_line(const std::string& line);

  /// Stdio transport: serves requests from `in` until EOF or SHUTDOWN.
  /// Responses are written to `out` in request order. Returns 0 on a
  /// clean session.
  int serve_stream(std::istream& in, std::ostream& out);

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) with
  /// SO_REUSEADDR. False on failure; listen_error() says why.
  bool listen(int port);
  const std::string& listen_error() const { return transport_.listen_error(); }
  int port() const { return transport_.port(); }
  /// Accept loop + worker lanes; blocks until SHUTDOWN (verb or
  /// request_shutdown()). Requires a successful listen().
  void serve();

  /// Thread-safe: stops accepting, drains in-flight requests, unblocks
  /// every transport.
  void request_shutdown() { transport_.request_shutdown(); }
  bool shutdown_requested() const { return transport_.shutdown_requested(); }

  ServerStats stats() const;

 private:
  void note_result(Verb v, double ms, bool ok);
  /// Lock-free HEALTH reply from the epoch/loaded mirrors (fast path —
  /// must never touch the db locks).
  std::string health_line();
  /// Refresh the mirrors after a mutation (called with no locks held;
  /// the mirrors are advisory, exact values come from the reply itself).
  void refresh_mirrors(std::uint64_t epoch, bool loaded);

  ServerOptions opt_;
  DesignDb db_;
  LineTransport transport_;

  // Lock-free state mirrors feeding health_line().
  std::atomic<std::uint64_t> epoch_mirror_{0};
  std::atomic<bool> loaded_mirror_{false};
  std::atomic<std::uint64_t> health_probes_{0};

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace qwm::service
