// qwm_serve transport + dispatch layer.
//
// A Server owns one DesignDb and serves the newline protocol over two
// transports:
//
//  * stdio  — serve_stream(): one client session on an istream/ostream
//    pair, requests answered in order (the scripted-CI mode).
//  * TCP    — listen() + serve(): POSIX sockets on 127.0.0.1, one reader
//    thread per connection, strict request/response per connection,
//    concurrency across connections.
//
// Both transports funnel requests through the same machinery: a *bounded
// admission queue* drained by worker lanes running on the existing
// support::ThreadPool (each lane is one long-lived parallel_for index).
// A full queue rejects immediately with "ERR BUSY" — overload sheds load
// instead of stalling the readers — and a request that waited in the
// queue past the configured deadline is answered "ERR DEADLINE" without
// touching the engine. Queries run under the DesignDb's shared lock;
// RESIZE/UPDATE/LOAD transactions serialize on its exclusive lock and
// bump the epoch (see design_db.h).
//
// Per-verb request/error/latency counters plus the busy/deadline
// shed counts are surfaced through the STATS verb.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "qwm/service/design_db.h"
#include "qwm/service/protocol.h"
#include "qwm/support/thread_pool.h"

namespace qwm::service {

struct ServerOptions {
  /// Worker lanes draining the admission queue (request concurrency).
  int threads = 4;
  /// Bounded admission queue capacity; a full queue answers ERR BUSY.
  /// 0 rejects everything (useful to test the overload path).
  int queue_capacity = 64;
  /// > 0: requests that waited in the queue longer than this are
  /// answered ERR DEADLINE instead of being executed.
  double deadline_ms = 0.0;
  /// > 0: a request whose *execution* (not queue wait) exceeds this is
  /// answered "ERR DEGRADED ..." instead of its normal reply — the
  /// graceful-degradation contract for slow solves. Mutating verbs have
  /// already applied by then; retrying them is safe (RESIZE re-stages
  /// the same width, UPDATE finds a clean cone).
  double solve_deadline_ms = 0.0;
  DesignDbOptions db;
};

/// Request/latency accounting of one verb.
struct VerbStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

struct ServerStats {
  VerbStats verb[kVerbCount];
  std::uint64_t busy_rejections = 0;
  std::uint64_t deadline_expirations = 0;
  std::uint64_t malformed = 0;  ///< lines that failed to parse
  /// Requests whose execution overran solve_deadline_ms (ERR DEGRADED).
  std::uint64_t solve_deadline_expirations = 0;
  /// "OK DEGRADED" replies served (fallback-ladder results delivered).
  std::uint64_t degraded_replies = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opt = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  DesignDb& db() { return db_; }
  const ServerOptions& options() const { return opt_; }

  /// Parses and executes one request line, returning the one-line
  /// response. Thread-safe; every transport funnels through this, and
  /// tests / in-process benches may call it directly (no admission
  /// queue or deadline on this path).
  std::string handle_line(const std::string& line);

  /// Stdio transport: serves requests from `in` until EOF or SHUTDOWN.
  /// Responses are written to `out` in request order. Returns 0 on a
  /// clean session.
  int serve_stream(std::istream& in, std::ostream& out);

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()). False on failure.
  bool listen(int port);
  int port() const { return port_; }
  /// Accept loop + worker lanes; blocks until SHUTDOWN (verb or
  /// request_shutdown()). Requires a successful listen().
  void serve();

  /// Thread-safe: stops accepting, drains in-flight requests, unblocks
  /// every transport.
  void request_shutdown();
  bool shutdown_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

 private:
  struct Conn;
  struct Job;

  /// Admission + execution for one request line read by a transport:
  /// enqueue (or shed with BUSY), wait for the worker's response write.
  void submit_and_wait(const std::shared_ptr<Conn>& conn,
                       const std::string& line);
  void worker_loop();
  void run_workers();   ///< parallel_for the worker lanes (blocks)
  void reader_loop(std::shared_ptr<Conn> conn);
  void note_result(Verb v, double ms, bool ok);

  ServerOptions opt_;
  DesignDb db_;
  support::ThreadPool pool_;
  std::atomic<bool> stop_{false};

  // Bounded admission queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool queue_closed_ = false;

  // Stats.
  mutable std::mutex stats_mu_;
  ServerStats stats_;

  // TCP state.
  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
};

}  // namespace qwm::service
