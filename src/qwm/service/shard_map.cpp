#include "qwm/service/shard_map.h"

#include <algorithm>
#include <set>

namespace qwm::service {

ShardMap build_shard_map(const circuit::PartitionedDesign& design,
                         int shard_count) {
  const int n = static_cast<int>(design.stages.size());
  ShardMap map;
  map.shard_count = std::max(1, std::min(shard_count, std::max(1, n)));
  map.shard_of.assign(static_cast<std::size_t>(n), 0);
  map.stages_of.resize(static_cast<std::size_t>(map.shard_count));
  map.boundary_of.resize(static_cast<std::size_t>(map.shard_count));
  if (n == 0) return map;

  // Stage predecessors through the driver map (dedup'd).
  std::vector<std::vector<int>> preds(static_cast<std::size_t>(n));
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int si = 0; si < n; ++si) {
    std::set<int> p;
    for (const netlist::NetId in :
         design.stages[static_cast<std::size_t>(si)].input_nets) {
      const auto it = design.driver_of.find(in);
      if (it != design.driver_of.end() && it->second.first != si)
        p.insert(it->second.first);
    }
    preds[static_cast<std::size_t>(si)].assign(p.begin(), p.end());
    indeg[static_cast<std::size_t>(si)] = static_cast<int>(p.size());
  }
  std::vector<std::vector<int>> succs(static_cast<std::size_t>(n));
  for (int si = 0; si < n; ++si)
    for (const int p : preds[static_cast<std::size_t>(si)])
      succs[static_cast<std::size_t>(p)].push_back(si);

  // Kahn levelization; within a level, ascending stage index.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> frontier;
  for (int si = 0; si < n; ++si)
    if (indeg[static_cast<std::size_t>(si)] == 0) frontier.push_back(si);
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end());
    std::vector<int> next;
    for (const int si : frontier) {
      order.push_back(si);
      for (const int c : succs[static_cast<std::size_t>(si)])
        if (--indeg[static_cast<std::size_t>(c)] == 0) next.push_back(c);
    }
    frontier = std::move(next);
  }
  if (static_cast<int>(order.size()) != n) {
    // Cycle: level-major order is undefined; everything lands on shard 0
    // and the caller checks acyclic before fanning out.
    map.acyclic = false;
    map.stages_of[0].resize(static_cast<std::size_t>(n));
    for (int si = 0; si < n; ++si) map.stages_of[0][si] = si;
    return map;
  }

  // Contiguous blocks of near-equal size, remainder to the front.
  const int base = n / map.shard_count;
  const int extra = n % map.shard_count;
  std::size_t pos = 0;
  for (int s = 0; s < map.shard_count; ++s) {
    const int take = base + (s < extra ? 1 : 0);
    for (int k = 0; k < take; ++k) {
      const int si = order[pos++];
      map.shard_of[static_cast<std::size_t>(si)] = s;
      map.stages_of[static_cast<std::size_t>(s)].push_back(si);
    }
  }

  // Boundary exports: nets driven in shard s and read by a later shard.
  std::vector<std::set<netlist::NetId>> boundary(
      static_cast<std::size_t>(map.shard_count));
  for (int si = 0; si < n; ++si) {
    const int s = map.shard_of[static_cast<std::size_t>(si)];
    for (const netlist::NetId in :
         design.stages[static_cast<std::size_t>(si)].input_nets) {
      const auto it = design.driver_of.find(in);
      if (it == design.driver_of.end()) continue;
      const int owner = map.shard_of[static_cast<std::size_t>(it->second.first)];
      if (owner != s) boundary[static_cast<std::size_t>(owner)].insert(in);
    }
  }
  for (int s = 0; s < map.shard_count; ++s)
    map.boundary_of[static_cast<std::size_t>(s)].assign(
        boundary[static_cast<std::size_t>(s)].begin(),
        boundary[static_cast<std::size_t>(s)].end());
  return map;
}

}  // namespace qwm::service
