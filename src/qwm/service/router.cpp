#include "qwm/service/router.h"

#include <cctype>

namespace qwm::service {

namespace {

std::string first_word_lower(const std::string& line) {
  std::string word;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!word.empty()) break;
      continue;
    }
    word.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return word;
}

}  // namespace

Router::Router(Fleet* fleet, RouterOptions opt)
    : fleet_(fleet),
      transport_(TransportOptions{opt.threads, opt.queue_capacity,
                                  opt.deadline_ms}) {
  transport_.set_handler(
      [this](const std::string& line) { return handle_line(line); });
  transport_.set_fast_handler(
      [this](const std::string& line, std::string* response) {
        if (first_word_lower(line) != "health") return false;
        *response = fleet_->health_line();
        return true;
      });
}

Router::~Router() { request_shutdown(); }

std::string Router::handle_line(const std::string& line) {
  const std::string resp = fleet_->handle_line(line);
  // The fleet already broadcast SHUTDOWN to its shards; this router's
  // own transport stops after the reply is delivered.
  if (first_word_lower(line) == "shutdown") transport_.request_shutdown();
  return resp;
}

int Router::serve_stream(std::istream& in, std::ostream& out) {
  return transport_.serve_stream(in, out);
}

bool Router::listen(int port) { return transport_.listen(port); }

void Router::serve() { transport_.serve(); }

void Router::request_shutdown() { transport_.request_shutdown(); }

}  // namespace qwm::service
