#include "qwm/service/shard_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qwm::service {

namespace {

timeval to_timeval(double ms) {
  if (ms <= 0.0) ms = 1.0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>((ms - 1000.0 * tv.tv_sec) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  return tv;
}

}  // namespace

TcpEndpoint::TcpEndpoint(int port) : port_(port) {}

TcpEndpoint::~TcpEndpoint() { disconnect(); }

void TcpEndpoint::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool TcpEndpoint::ensure_connected(double timeout_ms) {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const timeval tv = to_timeval(timeout_ms);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    disconnect();
    return false;
  }
  return true;
}

bool TcpEndpoint::call(const std::string& line, double timeout_ms,
                       std::string* response) {
  std::lock_guard lock(mu_);
  if (!ensure_connected(timeout_ms)) return false;
  // Refresh the per-call deadline (calls may use different budgets, e.g.
  // a short HEALTH probe on a connection otherwise used for queries).
  const timeval tv = to_timeval(timeout_ms);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  std::string msg = line;
  msg += '\n';
  std::size_t off = 0;
  while (off < msg.size()) {
    const ssize_t n =
        ::send(fd_, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      disconnect();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string out = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      *response = std::move(out);
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      // EOF, error, or deadline expiry — protocol state unknown, drop
      // the connection so the next call starts clean.
      disconnect();
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace qwm::service
