#include "qwm/support/thread_pool.h"

#include <algorithm>

namespace qwm::support {

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int lanes = std::max(1, resolve_threads(threads));
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 0; i < lanes - 1; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::function<void(std::size_t, int)>* fn = fn_;
    const std::size_t n = n_;
    lock.unlock();
    for (std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
         i < n; i = cursor_.fetch_add(1, std::memory_order_relaxed))
      (*fn)(i, lane);
    lock.lock();
    if (--running_ == 0) done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_lanes(n, [&fn](std::size_t i, int) { fn(i); });
}

void ThreadPool::parallel_for_lanes(
    std::size_t n, const std::function<void(std::size_t, int)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  wake_.notify_all();
  // The calling thread is lane 0.
  for (std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = cursor_.fetch_add(1, std::memory_order_relaxed))
    fn(i, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return running_ == 0; });
  fn_ = nullptr;
}

}  // namespace qwm::support
