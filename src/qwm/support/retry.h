// Shared bounded-retry policy with jittered exponential backoff.
//
// Promoted out of qwm_load so every client of the service layer — the
// load generator, the shard router's per-request calls, and the fleet
// supervisor's restart loop — retries transient failures the same way:
// attempt k sleeps backoff_ms * 2^min(k, max_exponent) * [0.5, 1.5),
// with the jitter drawn from a caller-owned splitmix64 stream so
// concurrent retriers decorrelate instead of re-stampeding the target,
// and so a seeded test reproduces the exact sleep schedule.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace qwm::support {

struct RetryPolicy {
  /// Additional attempts after the first (0 = no retry).
  int retries = 0;
  /// Base backoff; attempt k sleeps backoff_ms * 2^min(k, max_exponent)
  /// scaled by the jitter factor.
  double backoff_ms = 5.0;
  /// Exponent cap, so long retry ladders stop doubling.
  int max_exponent = 10;
};

/// splitmix64 step — the repo-wide seeded mixer (same constants as the
/// fault-injection and workload generators).
inline std::uint64_t retry_next_rand(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Sleep duration of retry attempt `attempt` (0-based), advancing `rng`.
inline double retry_backoff_ms(const RetryPolicy& p, int attempt,
                               std::uint64_t* rng) {
  const double jitter =
      0.5 + static_cast<double>(retry_next_rand(rng) % 1024) / 1024.0;
  const double scale = static_cast<double>(
      1ull << static_cast<unsigned>(std::min(attempt, p.max_exponent)));
  return p.backoff_ms * scale * jitter;
}

/// Runs `try_fn` until it yields a result `retryable` rejects or the
/// retry budget is exhausted, sleeping the jittered backoff between
/// attempts. `retry_count`, when non-null, accumulates the retries
/// actually performed (the observability counter qwm_load reports).
template <typename TryFn, typename RetryableFn>
auto retry_with_backoff(const RetryPolicy& p, std::uint64_t* rng,
                        std::uint64_t* retry_count, TryFn&& try_fn,
                        RetryableFn&& retryable) -> decltype(try_fn()) {
  auto result = try_fn();
  for (int attempt = 0; attempt < p.retries; ++attempt) {
    if (!retryable(result)) return result;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        retry_backoff_ms(p, attempt, rng)));
    if (retry_count != nullptr) ++*retry_count;
    result = try_fn();
  }
  return result;
}

}  // namespace qwm::support
