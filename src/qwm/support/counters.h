// Lock-free event counters shared by the caching layers.
//
// The STA memo cache is probed concurrently from the worker lanes of the
// level scheduler but mutated only in the single-threaded merge phase, so
// the lookup-side counters (hits/misses) are atomics with relaxed order —
// they are statistics, not synchronization — while the commit-side
// counters (insertions/evictions) are plain integers.
#pragma once

#include <atomic>
#include <cstdint>

namespace qwm::support {

/// A plain, copyable snapshot of cache activity.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// The live counters. Lookup-side members may be bumped from any thread.
class CacheCounters {
 public:
  void hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void insertion() { ++insertions_; }  ///< commit phase only
  void eviction() { ++evictions_; }    ///< commit phase only

  CacheStats snapshot() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_;
    s.evictions = evictions_;
    return s;
  }

  void reset() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    insertions_ = 0;
    evictions_ = 0;
  }

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace qwm::support
