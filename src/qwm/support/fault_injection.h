// Deterministic, seedable fault injection for the solver and the service.
//
// A FaultPlan is a list of rules, each targeting one injection site
// (Newton stall, singular tridiagonal pivot, Sherman-Morrison denominator
// blow-up, workspace grow, malformed protocol frame, slow/failed request,
// and the process-level fleet sites: dropped connection, stalled reply,
// corrupted reply line, refused shard restart). The plan is armed
// process-wide through an atomic pointer; the hot-path check
// `fire_fault()` is a single relaxed load plus null test when no plan is
// armed, so the hooks are compiled in always at zero steady-state cost.
//
// For multi-instance setups (a sharded serving fleet whose shards may
// live in one test process), a FaultHook gives each instance its *own*
// plan and counters, so a test can sabotage shard k's transport without
// touching its siblings; qwm_serve's --fault-spec flag parses a plan
// from a command-line spec (see parse_fault_plan) to arm per-process
// faults across a real fleet.
//
// Determinism: a rule fires on occurrence indices derived from per-site
// atomic counters (`start`, every `period`-th, at most `count` times), or
// probabilistically through a splitmix64 hash of (seed, site, occurrence)
// so a given seed reproduces the same firing pattern. Rules can be
// restricted to fallback-ladder rungs (`max_rung`) so a fault that
// sabotages the nominal solve does not also sabotage the recovery rung a
// test expects to land on.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace qwm::support {

/// Every place the code base can be told to fail on purpose.
enum class FaultSite : int {
  kNewtonStall = 0,   ///< newton_solve reports non-convergence at iter k
  kSingularPivot,     ///< thomas_solve hits a (simulated) zero pivot
  kSmDenominator,     ///< Sherman-Morrison denominator |1+v'z| underflows
  kBisectionFail,     ///< the bisection fallback rung itself fails
  kWorkspaceGrow,     ///< workspace checkpoint records a phantom grow
  kMalformedFrame,    ///< a protocol request line arrives corrupted
  kSlowRequest,       ///< a service request stalls for `magnitude` ms
  kFailRequest,       ///< a service request fails outright (ERR INJECTED)
  kDropConnection,    ///< the server drops the client connection mid-reply
  kStallReply,        ///< a reply is withheld for `magnitude` ms (past any
                      ///< client deadline) before being written
  kCorruptReply,      ///< one reply line is written torn/garbled
  kRefuseRestart,     ///< the fleet supervisor's restart attempt fails
};
inline constexpr int kFaultSiteCount = 12;

/// Short stable name for logs and test messages ("newton_stall", ...).
const char* fault_site_name(FaultSite site);

/// One injection rule. Defaults fire on every occurrence, forever, at any
/// ladder rung.
struct FaultRule {
  FaultSite site = FaultSite::kNewtonStall;
  /// First occurrence index (0-based, per site) eligible to fire.
  std::uint64_t start = 0;
  /// Fire every `period`-th eligible occurrence (1 = every one).
  std::uint64_t period = 1;
  /// Stop after this many fires.
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  /// Fire only while the fallback ladder is at rung <= max_rung. The
  /// nominal solve runs at rung 0; recovery rungs raise it (see
  /// ScopedRung), so `max_rung = 0` breaks only the nominal attempt.
  int max_rung = std::numeric_limits<int>::max();
  /// Site-specific parameter: stall iteration for kNewtonStall, sleep
  /// milliseconds for kSlowRequest. Ignored elsewhere.
  double magnitude = 0.0;
  /// 0 = deterministic schedule above; otherwise fire when
  /// splitmix64(seed, site, occurrence) % one_in == 0 (still subject to
  /// start/count/max_rung).
  std::uint32_t one_in = 0;
};

/// A seed plus the rules it parameterises. The plan object must outlive
/// its armed window (ScopedFaultPlan handles this).
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  FaultPlan& add(FaultRule rule) {
    rules.push_back(rule);
    return *this;
  }
  bool empty() const { return rules.empty(); }
};

/// Per-site observability: how often each site was consulted while a plan
/// was armed, and how often it actually fired.
struct FaultCounters {
  std::uint64_t occurrences[kFaultSiteCount] = {};
  std::uint64_t fired[kFaultSiteCount] = {};
};

namespace detail {
extern std::atomic<const FaultPlan*> g_fault_plan;
bool fire_fault_slow(FaultSite site, double* magnitude);
}  // namespace detail

/// Arms `plan` process-wide (nullptr disarms). Returns the previous plan.
/// Occurrence counters are only advanced while a plan is armed.
const FaultPlan* arm_fault_plan(const FaultPlan* plan);

/// True when any plan is armed.
inline bool fault_plan_armed() {
  return detail::g_fault_plan.load(std::memory_order_relaxed) != nullptr;
}

/// Hot-path check: did an armed rule for `site` fire on this occurrence?
/// Writes the firing rule's magnitude through `magnitude` when non-null.
/// One relaxed atomic load when disarmed.
inline bool fire_fault(FaultSite site, double* magnitude = nullptr) {
  if (detail::g_fault_plan.load(std::memory_order_relaxed) == nullptr)
    return false;
  return detail::fire_fault_slow(site, magnitude);
}

/// Snapshot / reset of the per-site counters.
FaultCounters fault_counters();
void reset_fault_counters();

/// Parses a textual fault-plan spec into `plan`. Grammar (whitespace-free):
///
///   spec  := entry (',' entry)*
///   entry := "seed=" N | site (':' key '=' N)*
///   site  := short site name (fault_site_name), e.g. "drop_connection"
///   key   := start | period | count | one_in | max_rung | magnitude
///
/// Example: "drop_connection:start=5:count=1,stall_reply:magnitude=50".
/// Returns false and fills `error` on a malformed spec. Used by
/// qwm_serve --fault-spec so a CI script can arm deterministic faults in
/// one specific shard process of a fleet.
bool parse_fault_plan(const std::string& spec, FaultPlan* plan,
                      std::string* error);

/// Reverse of fault_site_name: false when `name` matches no site.
bool fault_site_from_name(const std::string& name, FaultSite* site);

/// Instance-scoped fault evaluation: a FaultHook owns its plan and its
/// occurrence/fired counters, independent of the process-global plan, so
/// each shard server of an in-process fleet can be sabotaged
/// individually and deterministically. fire() is thread-safe; set_plan()
/// must not race with fire() (configure before serving).
class FaultHook {
 public:
  FaultHook() = default;
  explicit FaultHook(FaultPlan plan) : plan_(std::move(plan)) {}

  void set_plan(FaultPlan plan) { plan_ = std::move(plan); }
  bool armed() const { return !plan_.empty(); }

  /// Same rule semantics as the global fire_fault(), evaluated against
  /// this hook's plan and counters only.
  bool fire(FaultSite site, double* magnitude = nullptr);

  FaultCounters counters() const;
  void reset_counters();

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> occurrences_[kFaultSiteCount] = {};
  std::atomic<std::uint64_t> fired_[kFaultSiteCount] = {};
};

/// RAII arm/disarm, resetting counters on entry so tests start clean.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan plan_;
  const FaultPlan* previous_;
};

/// Current fallback-ladder rung of this thread (0 = nominal solve).
int current_fault_rung();

/// RAII rung marker: recovery rungs wrap their work in a ScopedRung so
/// rules with a lower max_rung stop firing.
class ScopedRung {
 public:
  explicit ScopedRung(int rung);
  ~ScopedRung();
  ScopedRung(const ScopedRung&) = delete;
  ScopedRung& operator=(const ScopedRung&) = delete;

 private:
  int previous_;
};

}  // namespace qwm::support
