// Level-synchronous worker pool for the parallel STA scheduler.
//
// The STA engine evaluates one topological level of independent stages
// at a time; inside a level the work items share nothing but read-only
// state, so the pool only needs a single primitive: parallel_for(n, fn)
// — run fn(0..n-1) across the workers plus the calling thread and block
// until every index is done. Work is distributed dynamically through a
// shared atomic cursor (a degenerate but contention-free form of work
// stealing: idle threads "steal" the next undone index), which load-
// balances the uneven QWM region counts without any per-item queues.
//
// Determinism contract: the pool never reorders *results* — callers
// write into per-index slots and merge them in index order afterwards,
// so the outcome is independent of scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qwm::support {

class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency(). The pool
  /// spawns threads-1 workers; the caller of parallel_for is the last
  /// lane.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), distributing indices dynamically
  /// over all lanes, and returns once every call has finished. fn must be
  /// safe to invoke concurrently from different threads for different i.
  /// Not reentrant: do not call parallel_for from inside fn.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Lane-aware variant: fn(i, lane) additionally receives the executing
  /// lane id in [0, thread_count()), stable per thread within one batch
  /// (lane 0 = the calling thread). Lets callers keep per-lane scratch
  /// (e.g. one EvalWorkspace per lane) without thread-local lookups.
  void parallel_for_lanes(std::size_t n,
                          const std::function<void(std::size_t, int)>& fn);

  /// Resolved lane count for a requested thread setting (<=0 = hardware).
  static int resolve_threads(int requested);

 private:
  void worker_loop(int lane);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;   ///< workers wait here for a new batch
  std::condition_variable done_;   ///< parallel_for waits here for workers
  // Batch state, written under mutex_ by parallel_for before waking the
  // workers; `cursor_` is the shared work-stealing index.
  const std::function<void(std::size_t, int)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::uint64_t generation_ = 0;  ///< batch id; workers run once per bump
  int running_ = 0;               ///< workers still inside the batch
  bool stop_ = false;
};

}  // namespace qwm::support
