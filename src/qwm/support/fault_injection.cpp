#include "qwm/support/fault_injection.h"

#include <cstdlib>

namespace qwm::support {
namespace {

// Per-site counters. `occurrences` orders rule-schedule decisions, so it
// is advanced with a fetch_add; `fired` is observability only.
std::atomic<std::uint64_t> g_occurrences[kFaultSiteCount] = {};
std::atomic<std::uint64_t> g_fired[kFaultSiteCount] = {};

thread_local int t_rung = 0;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Rule evaluation shared by the process-global plan and per-instance
/// FaultHooks: `occ` is this consultation's occurrence index and `fired`
/// the site's fire counter (incremented on a hit, undone when a rule's
/// budget is exhausted so counters stay meaningful).
bool rules_fire(const FaultPlan& plan, FaultSite site, std::uint64_t occ,
                std::atomic<std::uint64_t>* fired, double* magnitude) {
  const int s = static_cast<int>(site);
  for (const FaultRule& rule : plan.rules) {
    if (rule.site != site) continue;
    if (t_rung > rule.max_rung) continue;
    if (occ < rule.start) continue;
    if (rule.one_in != 0) {
      const std::uint64_t h = splitmix64(
          plan.seed ^ (static_cast<std::uint64_t>(s) << 56) ^ occ);
      if (h % rule.one_in != 0) continue;
    } else if (rule.period > 1 && (occ - rule.start) % rule.period != 0) {
      continue;
    }
    const std::uint64_t n = fired->fetch_add(1, std::memory_order_relaxed);
    if (n >= rule.count) {
      // Over budget: undo the fired increment so counters stay meaningful.
      fired->fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (magnitude != nullptr) *magnitude = rule.magnitude;
    return true;
  }
  return false;
}

}  // namespace

namespace detail {

std::atomic<const FaultPlan*> g_fault_plan{nullptr};

bool fire_fault_slow(FaultSite site, double* magnitude) {
  const FaultPlan* plan = g_fault_plan.load(std::memory_order_acquire);
  if (plan == nullptr) return false;

  const int s = static_cast<int>(site);
  const std::uint64_t occ =
      g_occurrences[s].fetch_add(1, std::memory_order_relaxed);
  return rules_fire(*plan, site, occ, &g_fired[s], magnitude);
}

}  // namespace detail

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kNewtonStall: return "newton_stall";
    case FaultSite::kSingularPivot: return "singular_pivot";
    case FaultSite::kSmDenominator: return "sm_denominator";
    case FaultSite::kBisectionFail: return "bisection_fail";
    case FaultSite::kWorkspaceGrow: return "workspace_grow";
    case FaultSite::kMalformedFrame: return "malformed_frame";
    case FaultSite::kSlowRequest: return "slow_request";
    case FaultSite::kFailRequest: return "fail_request";
    case FaultSite::kDropConnection: return "drop_connection";
    case FaultSite::kStallReply: return "stall_reply";
    case FaultSite::kCorruptReply: return "corrupt_reply";
    case FaultSite::kRefuseRestart: return "refuse_restart";
  }
  return "unknown";
}

bool fault_site_from_name(const std::string& name, FaultSite* site) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const FaultSite s = static_cast<FaultSite>(i);
    if (name == fault_site_name(s)) {
      *site = s;
      return true;
    }
  }
  return false;
}

bool parse_fault_plan(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const auto split = [](const std::string& s, char sep) {
    std::vector<std::string> parts;
    std::size_t begin = 0;
    for (;;) {
      const std::size_t end = s.find(sep, begin);
      parts.push_back(s.substr(begin, end == std::string::npos
                                          ? std::string::npos
                                          : end - begin));
      if (end == std::string::npos) return parts;
      begin = end + 1;
    }
  };
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty()) continue;
    if (entry.rfind("seed=", 0) == 0) {
      plan->seed = std::strtoull(entry.c_str() + 5, nullptr, 10);
      continue;
    }
    const std::vector<std::string> fields = split(entry, ':');
    FaultRule rule;
    if (!fault_site_from_name(fields[0], &rule.site))
      return fail("unknown fault site: " + fields[0]);
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::size_t eq = fields[i].find('=');
      if (eq == std::string::npos)
        return fail("bad fault-rule field (want key=value): " + fields[i]);
      const std::string key = fields[i].substr(0, eq);
      const std::string value = fields[i].substr(eq + 1);
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || v < 0.0)
        return fail("bad fault-rule value: " + fields[i]);
      if (key == "start") rule.start = static_cast<std::uint64_t>(v);
      else if (key == "period") rule.period = static_cast<std::uint64_t>(v);
      else if (key == "count") rule.count = static_cast<std::uint64_t>(v);
      else if (key == "one_in") rule.one_in = static_cast<std::uint32_t>(v);
      else if (key == "max_rung") rule.max_rung = static_cast<int>(v);
      else if (key == "magnitude") rule.magnitude = v;
      else return fail("unknown fault-rule key: " + key);
    }
    if (rule.period == 0) return fail("fault-rule period must be >= 1");
    plan->add(rule);
  }
  if (plan->empty()) return fail("fault spec names no rules: " + spec);
  return true;
}

bool FaultHook::fire(FaultSite site, double* magnitude) {
  if (plan_.empty()) return false;
  const int s = static_cast<int>(site);
  const std::uint64_t occ =
      occurrences_[s].fetch_add(1, std::memory_order_relaxed);
  return rules_fire(plan_, site, occ, &fired_[s], magnitude);
}

FaultCounters FaultHook::counters() const {
  FaultCounters c;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    c.occurrences[i] = occurrences_[i].load(std::memory_order_relaxed);
    c.fired[i] = fired_[i].load(std::memory_order_relaxed);
  }
  return c;
}

void FaultHook::reset_counters() {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    occurrences_[i].store(0, std::memory_order_relaxed);
    fired_[i].store(0, std::memory_order_relaxed);
  }
}

const FaultPlan* arm_fault_plan(const FaultPlan* plan) {
  return detail::g_fault_plan.exchange(plan, std::memory_order_acq_rel);
}

FaultCounters fault_counters() {
  FaultCounters c;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    c.occurrences[i] = g_occurrences[i].load(std::memory_order_relaxed);
    c.fired[i] = g_fired[i].load(std::memory_order_relaxed);
  }
  return c;
}

void reset_fault_counters() {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    g_occurrences[i].store(0, std::memory_order_relaxed);
    g_fired[i].store(0, std::memory_order_relaxed);
  }
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan) : plan_(std::move(plan)) {
  reset_fault_counters();
  previous_ = arm_fault_plan(&plan_);
}

ScopedFaultPlan::~ScopedFaultPlan() { arm_fault_plan(previous_); }

int current_fault_rung() { return t_rung; }

ScopedRung::ScopedRung(int rung) : previous_(t_rung) { t_rung = rung; }

ScopedRung::~ScopedRung() { t_rung = previous_; }

}  // namespace qwm::support
