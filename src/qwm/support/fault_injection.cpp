#include "qwm/support/fault_injection.h"

namespace qwm::support {
namespace {

// Per-site counters. `occurrences` orders rule-schedule decisions, so it
// is advanced with a fetch_add; `fired` is observability only.
std::atomic<std::uint64_t> g_occurrences[kFaultSiteCount] = {};
std::atomic<std::uint64_t> g_fired[kFaultSiteCount] = {};

thread_local int t_rung = 0;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {

std::atomic<const FaultPlan*> g_fault_plan{nullptr};

bool fire_fault_slow(FaultSite site, double* magnitude) {
  const FaultPlan* plan = g_fault_plan.load(std::memory_order_acquire);
  if (plan == nullptr) return false;

  const int s = static_cast<int>(site);
  const std::uint64_t occ =
      g_occurrences[s].fetch_add(1, std::memory_order_relaxed);

  for (const FaultRule& rule : plan->rules) {
    if (rule.site != site) continue;
    if (t_rung > rule.max_rung) continue;
    if (occ < rule.start) continue;
    if (rule.one_in != 0) {
      const std::uint64_t h = splitmix64(plan->seed ^
                                         (static_cast<std::uint64_t>(s) << 56) ^
                                         occ);
      if (h % rule.one_in != 0) continue;
    } else if (rule.period > 1 && (occ - rule.start) % rule.period != 0) {
      continue;
    }
    const std::uint64_t fired =
        g_fired[s].fetch_add(1, std::memory_order_relaxed);
    if (fired >= rule.count) {
      // Over budget: undo the fired increment so counters stay meaningful.
      g_fired[s].fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (magnitude != nullptr) *magnitude = rule.magnitude;
    return true;
  }
  return false;
}

}  // namespace detail

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kNewtonStall: return "newton_stall";
    case FaultSite::kSingularPivot: return "singular_pivot";
    case FaultSite::kSmDenominator: return "sm_denominator";
    case FaultSite::kBisectionFail: return "bisection_fail";
    case FaultSite::kWorkspaceGrow: return "workspace_grow";
    case FaultSite::kMalformedFrame: return "malformed_frame";
    case FaultSite::kSlowRequest: return "slow_request";
    case FaultSite::kFailRequest: return "fail_request";
  }
  return "unknown";
}

const FaultPlan* arm_fault_plan(const FaultPlan* plan) {
  return detail::g_fault_plan.exchange(plan, std::memory_order_acq_rel);
}

FaultCounters fault_counters() {
  FaultCounters c;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    c.occurrences[i] = g_occurrences[i].load(std::memory_order_relaxed);
    c.fired[i] = g_fired[i].load(std::memory_order_relaxed);
  }
  return c;
}

void reset_fault_counters() {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    g_occurrences[i].store(0, std::memory_order_relaxed);
    g_fired[i].store(0, std::memory_order_relaxed);
  }
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan) : plan_(std::move(plan)) {
  reset_fault_counters();
  previous_ = arm_fault_plan(&plan_);
}

ScopedFaultPlan::~ScopedFaultPlan() { arm_fault_plan(previous_); }

int current_fault_rung() { return t_rung; }

ScopedRung::ScopedRung(int rung) : previous_(t_rung) { t_rung = rung; }

ScopedRung::~ScopedRung() { t_rung = previous_; }

}  // namespace qwm::support
