// Memory decoder tree with long wires (paper Fig. 3 / Example 3).
//
// The decoder's wire lengths double with each tree level, so the
// interconnect cannot be ignored: the wires are reduced to
// O'Brien/Savarino pi macro-models (built from AWE-style circuit
// moments) before QWM evaluates the selected root->leaf path. This
// example sweeps tree depth and wire resistivity, showing when the wire
// RC starts dominating the decode time, and prints the AWE view of the
// longest wire for comparison.
#include <cstdio>

#include "qwm/circuit/builders.h"
#include "qwm/circuit/path.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/tabular_model.h"
#include "qwm/interconnect/awe.h"
#include "qwm/interconnect/moments.h"
#include "qwm/interconnect/pi_model.h"

int main() {
  using namespace qwm;

  const device::Process base = device::Process::cmosp35();
  const device::TabularDeviceModel nmos(device::MosType::nmos, base);
  const device::TabularDeviceModel pmos(device::MosType::pmos, base);

  std::printf("Decoder tree decode time vs depth and wire resistivity\n");
  std::printf("(base wire 100 um, doubling per level)\n\n");
  std::printf("%7s", "levels");
  for (double rs : {0.075, 0.5, 2.0, 8.0}) std::printf("  rs=%-5.3g", rs);
  std::printf("   [ohm/sq]\n");

  for (int levels : {1, 2, 3, 4}) {
    std::printf("%7d", levels);
    for (double rs : {0.075, 0.5, 2.0, 8.0}) {
      device::Process proc = base;
      proc.wire.r_sheet = rs;
      const device::ModelSet models{&nmos, &pmos, &proc};
      const circuit::BuiltStage tree = circuit::make_decoder_tree(
          proc, levels, circuit::fanout_load_cap(proc), 100e-6);
      std::vector<numeric::PwlWaveform> inputs(
          tree.stage.input_count(),
          numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd));
      const core::StageTiming t = core::evaluate_stage(tree, inputs, models);
      if (t.ok && t.delay)
        std::printf(" %7.1fps", *t.delay * 1e12);
      else
        std::printf(" %9s", "fail");
    }
    std::printf("\n");
  }

  // AWE view of the deepest wire: Elmore vs multi-pole 50% delay.
  std::printf("\nLongest wire (level 3: 800 um) as an RC line, "
              "resistive layer:\n");
  device::WireParams wp = base.wire;
  wp.r_sheet = 2.0;
  int far = -1;
  const auto tree = interconnect::RcTree::from_wire(wp, 0.6e-6, 800e-6, 100,
                                                    &far);
  const auto elmore = interconnect::elmore_delays(tree);
  const auto m = interconnect::voltage_moments(tree, 6);
  std::vector<double> mom{1.0};
  for (int k = 1; k <= 5; ++k) mom.push_back(m[k][far]);
  const auto awe = interconnect::awe_reduce(mom, 3);
  std::printf("  Elmore delay: %.2f ps\n", elmore[far] * 1e12);
  if (awe) {
    const auto t50 = awe->step_crossing(0.5);
    std::printf("  AWE %d-pole 50%% delay: %.2f ps (Elmore overestimates "
                "by %.0f%%)\n", awe->order, t50.value_or(0) * 1e12,
                100.0 * (elmore[far] / t50.value_or(1e9) - 1.0));
  }
  const auto pi = interconnect::reduce_to_pi(tree);
  std::printf("  pi-model: C_near %.1f fF | R %.1f ohm | C_far %.1f fF\n",
              pi.c_near * 1e15, pi.r, pi.c_far * 1e15);
  return 0;
}
