// Transistor sizing with incremental STA in the loop — the use case the
// paper motivates: fast on-the-fly stage evaluation makes transistor-
// level timing cheap enough to sit inside an optimizer's inner loop.
//
// A greedy sizing pass over an inverter chain driving a large load:
// repeatedly upsize the device whose widening improves the worst arrival
// most per unit of added width, re-timing only the affected cone each
// trial (incremental update).
#include <cstdio>
#include <sstream>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/netlist/parser.h"
#include "qwm/sta/sta.h"

namespace {

std::string chain_deck(int stages) {
  std::ostringstream os;
  os << "sizing chain\nvdd vdd 0 3.3\nvin n0 0 0\n";
  for (int i = 0; i < stages; ++i) {
    os << "mp" << i << " n" << i + 1 << " n" << i
       << " vdd vdd pmos w=2u l=0.35u\n";
    os << "mn" << i << " n" << i + 1 << " n" << i
       << " 0 0 nmos w=1u l=0.35u\n";
  }
  os << "cl n" << stages << " 0 400f\n";  // heavy output load
  return os.str();
}

}  // namespace

int main() {
  using namespace qwm;

  const device::Process proc = device::Process::cmosp35();
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};

  const int stages = 4;
  const auto parsed = netlist::parse_spice(chain_deck(stages));
  if (!parsed.ok()) return 1;
  auto design = circuit::partition_netlist(parsed.netlist, models);
  sta::StaEngine sta(std::move(design), models);
  sta.run();
  double worst = sta.worst_arrival();
  std::printf("4-stage chain into 400 fF: initial worst arrival %.1f ps\n\n",
              worst * 1e12);

  // Candidate edits: every transistor, width multipliers applied greedily.
  struct Candidate {
    int stage;
    circuit::EdgeId edge;
    double width;
  };
  std::vector<Candidate> cands;
  for (std::size_t s = 0; s < sta.design().stages.size(); ++s)
    for (std::size_t e = 0; e < sta.design().stages[s].stage.edge_count(); ++e)
      cands.push_back({static_cast<int>(s), static_cast<circuit::EdgeId>(e),
                       sta.design().stages[s].stage
                           .edge(static_cast<circuit::EdgeId>(e)).w});

  const double kMaxWidth = 40e-6;
  std::size_t total_evals = 0;
  std::printf("%5s %-28s %12s %12s %8s\n", "iter", "edit", "arrival",
              "improvement", "evals");
  for (int iter = 1; iter <= 12; ++iter) {
    int best = -1;
    double best_gain_per_um = 0.0, best_arrival = worst;
    // Trial loop: each trial is an incremental re-time of the edited cone.
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      Candidate& c = cands[ci];
      const double new_w = c.width * 1.6;
      if (new_w > kMaxWidth) continue;
      sta.resize_transistor(c.stage, c.edge, new_w);
      total_evals += sta.update();
      const double arr = sta.worst_arrival();
      // Revert.
      sta.resize_transistor(c.stage, c.edge, c.width);
      total_evals += sta.update();
      const double gain = worst - arr;
      const double gain_per_um = gain / ((new_w - c.width) * 1e6);
      if (gain_per_um > best_gain_per_um) {
        best_gain_per_um = gain_per_um;
        best = static_cast<int>(ci);
        best_arrival = arr;
      }
    }
    if (best < 0 || worst - best_arrival < 0.5e-12) break;
    Candidate& c = cands[best];
    const double new_w = c.width * 1.6;
    sta.resize_transistor(c.stage, c.edge, new_w);
    total_evals += sta.update();
    std::printf("%5d stage %d edge %d: %4.1fu -> %4.1fu %9.1f ps %10.1f ps "
                "%8zu\n", iter, c.stage, c.edge, c.width * 1e6, new_w * 1e6,
                best_arrival * 1e12, (worst - best_arrival) * 1e12,
                total_evals);
    c.width = new_w;
    worst = best_arrival;
  }
  std::printf("\nFinal worst arrival: %.1f ps, using %zu incremental QWM "
              "stage evaluations in total.\n", worst * 1e12, total_evals);
  std::printf("(Every trial re-timed only the edited fanout cone — the\n"
              "transistor-level speed that makes sizing loops practical.)\n");
  return 0;
}
