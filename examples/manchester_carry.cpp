// Manchester carry chain analysis (paper Fig. 2 / Example 2).
//
// The carry chain is the paper's motivating case for transistor-level
// analysis: each bit-slice's output is channel-connected to the next
// slice, so the cells do not map to pre-characterizable gates — the
// worst-case carry ripple is a long NMOS path that must be evaluated
// on the fly. This example evaluates the generate-at-bit-0 ripple for
// increasing chain lengths and prints per-carry-node timing.
#include <cstdio>

#include "qwm/circuit/builders.h"
#include "qwm/circuit/path.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/tabular_model.h"

int main() {
  using namespace qwm;

  const device::Process proc = device::Process::cmosp35();
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};

  std::printf("Manchester carry chain: worst-case ripple (G0 fires, all "
              "P_i high)\n\n");
  std::printf("%6s %12s %14s %12s\n", "bits", "path FETs", "carry-out "
              "delay", "regions");
  for (int bits : {2, 4, 6, 8}) {
    const circuit::BuiltStage chain = circuit::make_manchester_chain(
        proc, bits, circuit::fanout_load_cap(proc));
    std::vector<numeric::PwlWaveform> inputs(
        chain.stage.input_count(),
        numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd));
    const core::StageTiming t = core::evaluate_stage(chain, inputs, models);
    if (!t.ok) {
      std::printf("%6d  FAILED: %s\n", bits, t.error.c_str());
      continue;
    }
    std::printf("%6d %12zu %11.2f ps %12zu\n", bits,
                t.problem.transistor_count(),
                t.delay.value_or(0) * 1e12, t.qwm.stats.regions);
  }

  // Detailed per-node view of the 5-bit chain: every carry node's 50%
  // crossing (the per-bit carry arrival).
  std::printf("\n5-bit chain, per-carry-node 50%% arrivals:\n");
  const circuit::BuiltStage chain = circuit::make_manchester_chain(
      proc, 5, circuit::fanout_load_cap(proc));
  std::vector<numeric::PwlWaveform> inputs(
      chain.stage.input_count(),
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd));
  const core::StageTiming t = core::evaluate_stage(chain, inputs, models);
  if (!t.ok) {
    std::fprintf(stderr, "evaluation failed: %s\n", t.error.c_str());
    return 1;
  }
  for (std::size_t k = 0; k < t.qwm.node_waveforms.size(); ++k) {
    const auto cross = t.qwm.node_waveforms[k].crossing(0.5 * proc.vdd);
    std::printf("  %-4s : %8.2f ps\n",
                chain.stage.node(t.problem.nodes[k]).name.c_str(),
                cross.value_or(-1) * 1e12);
  }
  std::printf("\nThe staggered arrivals are the paper's critical-point "
              "cascade:\neach pass transistor turns on when the carry node "
              "below it falls\nto VDD - Vth.\n");
  return 0;
}
