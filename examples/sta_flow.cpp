// Full static-timing flow: parse a SPICE netlist, partition it into
// logic stages (channel-connected components), run STA with QWM as the
// per-stage evaluation engine, and report the critical path. Then make a
// local edit and show the incremental update touching only the affected
// cone.
#include <cstdio>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/netlist/parser.h"
#include "qwm/sta/sta.h"

namespace {

// A small two-path design: a fast inverter branch and a slow NAND-chain
// branch converging on a final NAND.
constexpr const char* kDesign = R"(sta example design
vdd vdd 0 3.3
vin1 a 0 0
vin2 b 0 0
* branch 1: two inverters a -> x1 -> x2
mp1 x1 a vdd vdd pmos w=2u l=0.35u
mn1 x1 a 0  0   nmos w=1u l=0.35u
mp2 x2 x1 vdd vdd pmos w=2u l=0.35u
mn2 x2 x1 0  0   nmos w=1u l=0.35u
* branch 2: nand2(a,b) -> inverter -> y2
mp3 y1 a vdd vdd pmos w=2u l=0.35u
mp4 y1 b vdd vdd pmos w=2u l=0.35u
mn3 y1 a  m1 0   nmos w=1u l=0.35u
mn4 m1 b  0  0   nmos w=1u l=0.35u
mp5 y2 y1 vdd vdd pmos w=2u l=0.35u
mn5 y2 y1 0  0   nmos w=1u l=0.35u
* converge: nand2(x2, y2) -> out
mp6 out x2 vdd vdd pmos w=2u l=0.35u
mp7 out y2 vdd vdd pmos w=2u l=0.35u
mn6 out x2 m2 0  nmos w=1u l=0.35u
mn7 m2 y2 0  0   nmos w=1u l=0.35u
cload out 0 25f
)";

}  // namespace

int main() {
  using namespace qwm;

  const device::Process proc = device::Process::cmosp35();
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};

  // Parse and partition.
  const netlist::ParseResult parsed = netlist::parse_spice(kDesign);
  if (!parsed.ok()) {
    for (const auto& e : parsed.errors) std::fprintf(stderr, "%s\n", e.c_str());
    return 1;
  }
  auto design = circuit::partition_netlist(parsed.netlist, models);
  std::printf("Parsed %zu transistors into %zu logic stages; primary "
              "inputs:", parsed.netlist.mosfets.size(), design.stages.size());
  for (auto n : design.primary_inputs)
    std::printf(" %s", parsed.netlist.net_name(n).c_str());
  std::printf("\n\n");

  // Full STA.
  sta::StaEngine sta(std::move(design), models);
  const std::size_t evals = sta.run();
  std::printf("Full analysis: %zu QWM stage evaluations, worst arrival "
              "%.2f ps\n\n", evals, sta.worst_arrival() * 1e12);

  std::printf("Per-net arrivals [ps] (rise / fall):\n");
  for (const char* name : {"x1", "x2", "y1", "y2", "out"}) {
    const auto net = parsed.netlist.find_net(name);
    const sta::NetTiming& t = sta.timing(*net);
    std::printf("  %-4s %8.2f / %-8.2f\n", name,
                t.rise.valid() ? t.rise.time * 1e12 : -1.0,
                t.fall.valid() ? t.fall.time * 1e12 : -1.0);
  }

  std::printf("\nCritical path:\n");
  for (const auto& step : sta.critical_path()) {
    std::printf("  %-4s %s at %.2f ps%s\n",
                parsed.netlist.net_name(step.net).c_str(),
                step.rising ? "rise" : "fall", step.arrival * 1e12,
                step.stage < 0 ? "  (primary input)" : "");
  }

  // Local edit: upsize the final NAND's bottom NMOS, update incrementally.
  const auto out_net = parsed.netlist.find_net("out");
  const auto [stage_idx, oi] = sta.design().driver_of.at(*out_net);
  (void)oi;
  circuit::EdgeId edge = -1;
  for (std::size_t e = 0;
       e < sta.design().stages[stage_idx].stage.edge_count(); ++e)
    if (sta.design().stages[stage_idx].stage
            .edge(static_cast<circuit::EdgeId>(e)).kind ==
        circuit::DeviceKind::nmos)
      edge = static_cast<circuit::EdgeId>(e);
  sta.resize_transistor(stage_idx, edge, 3e-6);
  const std::size_t incr = sta.update();
  std::printf("\nAfter upsizing one NMOS in the output NAND:\n");
  std::printf("  incremental update: %zu stage evaluations (full run was "
              "%zu)\n", incr, evals);
  std::printf("  new worst arrival: %.2f ps\n", sta.worst_arrival() * 1e12);
  return 0;
}
