// Quickstart: evaluate one logic stage with QWM and cross-check it
// against the bundled SPICE-class baseline.
//
//   1. Build device models for the CMOSP35-class process (the tabular
//      model characterizes itself from the golden physics on
//      construction — the paper's curve-fit table).
//   2. Build a NAND3 stage and give its latest input a rising step.
//   3. Run QWM: the output waveform comes back as piecewise-quadratic
//      regions separated by the critical points.
//   4. Run the transient baseline on the same stage and compare.
#include <cstdio>

#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/model_set.h"
#include "qwm/device/tabular_model.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

int main() {
  using namespace qwm;

  // --- 1. Process and device models -------------------------------------
  const device::Process proc = device::Process::cmosp35();
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};
  std::printf("Process: VDD=%.1f V, Lmin=%.2f um\n", proc.vdd,
              proc.l_min * 1e6);

  // --- 2. A NAND3 stage with a fanout-of-4 load --------------------------
  const circuit::BuiltStage nand3 =
      circuit::make_nand(proc, 3, circuit::fanout_load_cap(proc));
  std::vector<numeric::PwlWaveform> inputs;
  for (std::size_t i = 0; i < nand3.stage.input_count(); ++i) {
    if (static_cast<int>(i) == nand3.switching_input)
      inputs.push_back(numeric::PwlWaveform::ramp(10e-12, 40e-12, 0.0,
                                                  proc.vdd));
    else
      inputs.push_back(numeric::PwlWaveform::constant(proc.vdd));
  }

  // --- 3. QWM evaluation --------------------------------------------------
  const core::StageTiming timing =
      core::evaluate_stage(nand3, inputs, models);
  if (!timing.ok) {
    std::fprintf(stderr, "QWM failed: %s\n", timing.error.c_str());
    return 1;
  }
  std::printf("\nQWM: %zu regions, %zu Newton iterations, "
              "%zu device-model queries\n",
              timing.qwm.stats.regions, timing.qwm.stats.newton_iterations,
              timing.qwm.stats.device_evals);
  std::printf("Critical points [ps]:");
  for (std::size_t i = 0; i < timing.qwm.critical_times.size() && i < 3; ++i)
    std::printf(" %.1f", timing.qwm.critical_times[i] * 1e12);
  std::printf(" ... (%zu total)\n", timing.qwm.critical_times.size());
  std::printf("Delay (50%%-50%%): %.2f ps, output slew (90-10): %.2f ps\n",
              timing.delay.value_or(0) * 1e12,
              timing.output_slew.value_or(0) * 1e12);

  // --- 4. Cross-check against the SPICE baseline --------------------------
  spice::StageSim sim =
      spice::circuit_from_stage(nand3.stage, models, inputs);
  for (std::size_t n = 0; n < nand3.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (!nand3.stage.is_rail(id))
      sim.circuit.set_ic(sim.node_of[n], proc.vdd);  // precharged worst case
  }
  spice::TransientOptions opt;
  opt.t_stop = 600e-12;
  opt.dt = 1e-12;
  const spice::TransientResult ref =
      spice::simulate_transient(sim.circuit, opt);

  const auto t_in =
      inputs[nand3.switching_input].crossing(0.5 * proc.vdd, 0.0, true);
  const auto t_out = ref.waveforms[sim.node_of[nand3.output]].crossing(
      0.5 * proc.vdd, *t_in, false);
  const double ref_delay = *t_out - *t_in;
  std::printf("\nSPICE baseline (1 ps steps, %zu steps, %zu NR iterations): "
              "delay %.2f ps\n", ref.stats.steps, ref.stats.nr_iterations,
              ref_delay * 1e12);
  std::printf("QWM delay error vs baseline: %.2f%%\n",
              100.0 * (timing.delay.value_or(0) - ref_delay) / ref_delay);

  // Sampled waveform comparison at a few instants.
  std::printf("\n  t[ps]   QWM[V]  SPICE[V]\n");
  for (double t : {50e-12, 100e-12, 150e-12, 200e-12, 300e-12}) {
    std::printf("%7.0f %8.3f %9.3f\n", t * 1e12,
                timing.qwm.output_waveform().eval(t),
                ref.waveforms[sim.node_of[nand3.output]].eval(t));
  }
  return 0;
}
