two-inverter chain (serving-mode example deck)
vdd vdd 0 3.3
vin in 0 0
mn0 s1 in 0 0 nmos W=1.5u L=0.35u
mp0 s1 in vdd vdd pmos W=3u L=0.35u
mn1 out s1 0 0 nmos W=1.5u L=0.35u
mp1 out s1 vdd vdd pmos W=3u L=0.35u
cl out 0 20f
.end
