// Regenerates tests/data/golden_delays.json — the checked-in
// cross-engine reference used by tests/sta/golden_delay_test.cpp.
//
// Usage: make_golden [output-path]
//
// For each golden case (Table I gates, Table II stacks) both engines run
// under the shared worst-case stimulus; the JSON records the measured
// delays/slews plus per-case tolerance ceilings derived from the measured
// cross-engine deviation (floored at 1% delay / 5% slew, with 1.3x
// headroom so timer-grade noise does not flake the suite).
#include <cmath>
#include <cstdio>
#include <string>

#include "../tests/common/golden_cases.h"

int main(int argc, char** argv) {
  using namespace qwm;
  const std::string path =
      argc > 1 ? argv[1] : std::string("tests/data/golden_delays.json");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }

  std::fprintf(f, "[\n");
  bool first = true;
  int failures = 0;
  for (const auto& c : test::golden_cases()) {
    const test::GoldenMeasure m = test::measure_golden(c.built);
    if (!m.ok) {
      std::fprintf(stderr, "FAILED %s: %s\n", c.name.c_str(),
                   m.error.c_str());
      ++failures;
      continue;
    }
    const double delay_tol =
        std::max(1.0, 1.3 * std::abs(m.delay_err_pct()));
    const double slew_tol = std::max(5.0, 1.3 * std::abs(m.slew_err_pct()));
    std::fprintf(
        f,
        "%s  {\"name\": \"%s\", \"qwm_delay_ps\": %.6f, \"qwm_slew_ps\": "
        "%.6f, \"spice_delay_ps\": %.6f, \"spice_slew_ps\": %.6f, "
        "\"delay_tol_pct\": %.2f, \"slew_tol_pct\": %.2f}",
        first ? "" : ",\n", c.name.c_str(), m.qwm_delay * 1e12,
        m.qwm_slew * 1e12, m.spice_delay * 1e12, m.spice_slew * 1e12,
        delay_tol, slew_tol);
    first = false;
    std::printf("%-10s qwm %.2f ps vs spice %.2f ps (err %+.2f%%), slew "
                "%.2f vs %.2f ps (err %+.2f%%)\n",
                c.name.c_str(), m.qwm_delay * 1e12, m.spice_delay * 1e12,
                m.delay_err_pct(), m.qwm_slew * 1e12, m.spice_slew * 1e12,
                m.slew_err_pct());
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return failures == 0 ? 0 : 1;
}
