// Regenerates the checked-in cross-engine references:
//
//   make_golden [output-path]             tests/data/golden_delays.json
//   make_golden --corners [output-path]   tests/data/golden_delays_corners.json
//
// For each golden case (Table I gates, Table II stacks) both engines run
// under the shared worst-case stimulus; the JSON records the measured
// delays/slews plus per-case tolerance ceilings derived from the measured
// cross-engine deviation (floored at 1% delay / 5% slew, with 1.3x
// headroom so timer-grade noise does not flake the suite).
//
// --corners measures every case at all three process corners against the
// per-corner characterized models; tests/sta/corner_golden_test.cpp
// replays it and additionally asserts fast <= typical <= slow delay
// ordering on every gate.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "../tests/common/golden_cases.h"

namespace {

int write_single(const std::string& path) {
  using namespace qwm;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }

  std::fprintf(f, "[\n");
  bool first = true;
  int failures = 0;
  for (const auto& c : test::golden_cases()) {
    const test::GoldenMeasure m = test::measure_golden(c.built);
    if (!m.ok) {
      std::fprintf(stderr, "FAILED %s: %s\n", c.name.c_str(),
                   m.error.c_str());
      ++failures;
      continue;
    }
    const double delay_tol =
        std::max(1.0, 1.3 * std::abs(m.delay_err_pct()));
    const double slew_tol = std::max(5.0, 1.3 * std::abs(m.slew_err_pct()));
    std::fprintf(
        f,
        "%s  {\"name\": \"%s\", \"qwm_delay_ps\": %.6f, \"qwm_slew_ps\": "
        "%.6f, \"spice_delay_ps\": %.6f, \"spice_slew_ps\": %.6f, "
        "\"delay_tol_pct\": %.2f, \"slew_tol_pct\": %.2f}",
        first ? "" : ",\n", c.name.c_str(), m.qwm_delay * 1e12,
        m.qwm_slew * 1e12, m.spice_delay * 1e12, m.spice_slew * 1e12,
        delay_tol, slew_tol);
    first = false;
    std::printf("%-10s qwm %.2f ps vs spice %.2f ps (err %+.2f%%), slew "
                "%.2f vs %.2f ps (err %+.2f%%)\n",
                c.name.c_str(), m.qwm_delay * 1e12, m.spice_delay * 1e12,
                m.delay_err_pct(), m.qwm_slew * 1e12, m.spice_slew * 1e12,
                m.slew_err_pct());
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return failures == 0 ? 0 : 1;
}

int write_corners(const std::string& path) {
  using namespace qwm;
  const device::CornerLibrary& lib = test::corner_models();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }

  std::fprintf(f, "[\n");
  bool first = true;
  int failures = 0;
  for (const auto& c : test::golden_cases()) {
    double delays[device::kCornerCount] = {};
    bool ok = true;
    std::fprintf(f, "%s  {\"name\": \"%s\"", first ? "" : ",\n",
                 c.name.c_str());
    for (const device::Corner corner : device::kAllCorners) {
      const test::GoldenMeasure m =
          test::measure_golden(c.built, lib.set(corner));
      if (!m.ok) {
        std::fprintf(stderr, "FAILED %s @ %s: %s\n", c.name.c_str(),
                     device::corner_name(corner), m.error.c_str());
        ok = false;
        break;
      }
      delays[static_cast<int>(corner)] = m.qwm_delay;
      const double delay_tol =
          std::max(1.0, 1.3 * std::abs(m.delay_err_pct()));
      std::fprintf(f,
                   ", \"%s_qwm_delay_ps\": %.6f, \"%s_spice_delay_ps\": "
                   "%.6f, \"%s_delay_tol_pct\": %.2f",
                   device::corner_name(corner), m.qwm_delay * 1e12,
                   device::corner_name(corner), m.spice_delay * 1e12,
                   device::corner_name(corner), delay_tol);
    }
    std::fprintf(f, "}");
    first = false;
    if (!ok) {
      ++failures;
      continue;
    }
    const double t = delays[static_cast<int>(device::Corner::typical)];
    const double fa = delays[static_cast<int>(device::Corner::fast)];
    const double s = delays[static_cast<int>(device::Corner::slow)];
    std::printf("%-10s fast %.2f <= typical %.2f <= slow %.2f ps%s\n",
                c.name.c_str(), fa * 1e12, t * 1e12, s * 1e12,
                (fa <= t && t <= s) ? "" : "  ORDER VIOLATION");
    if (!(fa <= t && t <= s)) ++failures;
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool corners = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--corners") == 0)
      corners = true;
    else
      path = argv[i];
  }
  if (path.empty())
    path = corners ? "tests/data/golden_delays_corners.json"
                   : "tests/data/golden_delays.json";
  return corners ? write_corners(path) : write_single(path);
}
