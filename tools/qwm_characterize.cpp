// qwm_characterize — builds, inspects, and persists the tabular device
// model (the paper's 7-parameter curve-fit grid).
//
//   qwm_characterize --save <nmos.grid> <pmos.grid> [--step v]
//   qwm_characterize --load <file.grid>          (prints grid statistics)
//   qwm_characterize --probe <vs> <vg>           (prints one fit curve)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "qwm/device/characterize.h"
#include "qwm/device/grid_io.h"
#include "qwm/device/tabular_model.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qwm_characterize --save <nmos.grid> <pmos.grid> "
               "[--step v]\n"
               "       qwm_characterize --load <file.grid>\n"
               "       qwm_characterize --probe <vs> <vg>\n");
  return 2;
}

void print_stats(const qwm::device::CharacterizationGrid& grid) {
  const auto s = grid.stats();
  std::printf("grid: %zux%zu points, step %.3f V, ref device %.2fu/%.2fu\n",
              grid.vs_axis.n, grid.vg_axis.n, grid.vs_axis.dx,
              grid.w_ref * 1e6, grid.l_ref * 1e6);
  std::printf("active points: %zu / %zu\n", s.active_points, s.grid_points);
  std::printf("mean R^2 (active): triode %.5f, saturation %.5f\n",
              s.mean_r2_triode, s.mean_r2_sat);
  std::printf("worst rms residual: triode %.3g A, saturation %.3g A\n",
              s.worst_rms_triode, s.worst_rms_sat);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm::device;
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  const Process proc = Process::cmosp35();

  if (mode == "--save" && argc >= 4) {
    CharacterizationOptions opt;
    for (int i = 4; i + 1 < argc; ++i)
      if (std::strcmp(argv[i], "--step") == 0)
        opt.grid_step = std::atof(argv[i + 1]);
    const MosfetPhysics nmos(MosType::nmos, proc.nmos, proc.temp_vt);
    const MosfetPhysics pmos(MosType::pmos, proc.pmos, proc.temp_vt);
    const auto gn = characterize(nmos, proc.vdd, opt);
    const auto gp = characterize(pmos, proc.vdd, opt);
    if (!save_grid_file(gn, argv[2]) || !save_grid_file(gp, argv[3])) {
      std::fprintf(stderr, "failed to write grid files\n");
      return 1;
    }
    std::printf("NMOS grid -> %s\n", argv[2]);
    print_stats(gn);
    std::printf("\nPMOS grid -> %s\n", argv[3]);
    print_stats(gp);
    return 0;
  }

  if (mode == "--load" && argc >= 3) {
    const auto grid = load_grid_file(argv[2]);
    if (!grid) {
      std::fprintf(stderr, "cannot load %s\n", argv[2]);
      return 1;
    }
    print_stats(*grid);
    return 0;
  }

  if (mode == "--probe" && argc >= 4) {
    const double vs = std::atof(argv[2]);
    const double vg = std::atof(argv[3]);
    const MosfetPhysics nmos(MosType::nmos, proc.nmos, proc.temp_vt);
    const auto curve = sample_iv_fit(nmos, proc.vdd, vs, vg);
    std::printf("NMOS at Vs=%.2f Vg=%.2f: vth=%.3f vdsat=%.3f\n", vs, vg,
                curve.vth, curve.vdsat);
    std::printf("# Vds[V] Ids_golden[uA] Ids_fit[uA]\n");
    for (std::size_t i = 0; i < curve.vds.size(); i += 4)
      std::printf("%7.3f %12.3f %12.3f\n", curve.vds[i],
                  curve.ids_data[i] * 1e6, curve.ids_fit[i] * 1e6);
    return 0;
  }
  return usage();
}
