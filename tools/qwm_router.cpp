// qwm_router — fault-tolerant front end for a sharded qwm_serve fleet.
//
//   qwm_router --shards N [--replicas R] [--stdio | --port P] [options]
//
// The router fork/execs N qwm_serve shard processes (--shard k/N) plus R
// full-design replicas on ephemeral loopback ports, then serves the
// standard newline protocol itself: LOAD fans out and runs the
// boundary-arrival exchange, reads route to the owning shard (hedged
// against a replica when slow, failed over with OK DEGRADED when the
// owner is down), SLACK/CORNERS route to replicas, RESIZE/UPDATE are
// consistent-or-refused under the fleet epoch. A supervisor thread
// HEALTH-probes every shard each --supervise-ms, degrades the cones of
// dead shards, and restarts + re-warms them (LOAD replay + mutation log
// + boundary resync) back to bit-identical service.
//
//   --shards N            shard process count (required, >= 1)
//   --replicas R          full-design read replicas          (default 1)
//   --stdio               serve one session on stdin/stdout (default)
//   --port P              serve TCP on 127.0.0.1:P (0 = ephemeral)
//   --port-file <path>    write the router's bound port to <path>
//   --run-dir <dir>       port/pid files of the children
//                         (default /tmp/qwm_router.<pid>)
//   --serve-bin <path>    qwm_serve binary (default: alongside qwm_router)
//   --deck <path>         preload: run LOAD through the fleet first
//   --threads N           router worker lanes                (default 4)
//   --queue N             router admission queue             (default 64)
//   --deadline-ms X       router queue-wait deadline         (default off)
//   --call-timeout-ms X   per-shard-call deadline            (default 5000)
//   --hedge-ms X          hedge reads to a replica after X ms (default off)
//   --retries N           per-call retry budget              (default 2)
//   --backoff-ms X        retry backoff base                 (default 5)
//   --probe-timeout-ms X  HEALTH probe deadline              (default 250)
//   --suspect-after N     consecutive failures -> suspect    (default 1)
//   --down-after N        consecutive failures -> down       (default 2)
//   --supervise-ms X      supervisor pass period, 0 = off    (default 500)
//   --no-restart          never restart dead shards (degrade only)
//   --shard-fault K SPEC  pass --fault-spec SPEC to shard K at spawn
//   --fault-spec SPEC     arm a plan in the router itself (e.g.
//                         refuse_restart:count=1)
//   --shard-threads N     worker lanes per child process     (default 2)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "qwm/service/fleet.h"
#include "qwm/service/router.h"
#include "qwm/support/fault_injection.h"

namespace {

using namespace qwm;

int usage() {
  std::fprintf(stderr,
               "usage: qwm_router --shards N [--replicas R] [--stdio | "
               "--port P] [--port-file path]\n"
               "                  [--run-dir dir] [--serve-bin path] [--deck "
               "path] [--threads N]\n"
               "                  [--queue N] [--deadline-ms X] "
               "[--call-timeout-ms X] [--hedge-ms X]\n"
               "                  [--retries N] [--backoff-ms X] "
               "[--probe-timeout-ms X]\n"
               "                  [--suspect-after N] [--down-after N] "
               "[--supervise-ms X]\n"
               "                  [--no-restart] [--shard-fault K SPEC] "
               "[--fault-spec SPEC]\n");
  return 2;
}

struct SpawnConfig {
  std::string serve_bin;
  std::string run_dir;
  int shard_count = 1;
  int shard_threads = 2;
  std::vector<std::string> shard_fault;  ///< per shard, "" = none
};

/// Children of this router, indexed shard 0..N-1 then replicas.
struct Child {
  pid_t pid = -1;
  int port = 0;
};

/// Fork/execs one qwm_serve child ("--shard k/N" when shard >= 0, a
/// full-design replica otherwise) on an ephemeral port and waits for its
/// port file. Returns pid -1 on failure.
Child spawn_child(const SpawnConfig& cfg, int shard, int replica) {
  Child child;
  const std::string tag =
      shard >= 0 ? "shard" + std::to_string(shard)
                 : "replica" + std::to_string(replica);
  const std::string port_file = cfg.run_dir + "/" + tag + ".port";
  std::remove(port_file.c_str());

  // Every child runs with the stage-eval memo cache off: the cache's
  // bucketed reuse depends on per-process evaluation history, which
  // sharding changes, and the fleet's contract is that answers are
  // bit-identical regardless of shard count (and match a cache-off
  // single process / `qwm_load --verify --no-cache` reference).
  std::vector<std::string> args = {cfg.serve_bin,
                                   "--port",
                                   "0",
                                   "--port-file",
                                   port_file,
                                   "--no-cache",
                                   "--threads",
                                   std::to_string(cfg.shard_threads)};
  if (shard >= 0) {
    args.push_back("--shard");
    args.push_back(std::to_string(shard) + "/" +
                   std::to_string(cfg.shard_count));
    if (!cfg.shard_fault[static_cast<std::size_t>(shard)].empty()) {
      args.push_back("--fault-spec");
      args.push_back(cfg.shard_fault[static_cast<std::size_t>(shard)]);
    }
  }

  const pid_t pid = ::fork();
  if (pid < 0) return child;
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
  }
  // Wait for the child to report its port (it may be slow under load, but
  // an execv failure exits quickly — poll both).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return child;  // died
    std::ifstream pf(port_file);
    int port = 0;
    if (pf >> port && port > 0) {
      child.pid = pid;
      child.port = port;
      std::ofstream(cfg.run_dir + "/" + tag + ".pid") << pid << "\n";
      return child;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return child;
}

qwm::support::FaultPlan& fault_plan() {
  static qwm::support::FaultPlan plan;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  service::FleetOptions fopt;
  fopt.retry.retries = 2;
  service::RouterOptions ropt;
  SpawnConfig cfg;
  int shards = 0, replicas = 1;
  bool tcp = false, no_restart = false;
  int port = 0;
  double supervise_ms = 500.0;
  std::string port_file, deck;

  const auto int_arg = [&](int* i, int* out) {
    if (*i + 1 >= argc) std::exit(usage());
    *out = std::atoi(argv[++*i]);
  };
  const auto dbl_arg = [&](int* i, double* out) {
    if (*i + 1 >= argc) std::exit(usage());
    *out = std::atof(argv[++*i]);
  };
  std::vector<std::pair<int, std::string>> shard_faults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards") {
      int_arg(&i, &shards);
    } else if (arg == "--replicas") {
      int_arg(&i, &replicas);
    } else if (arg == "--stdio") {
      tcp = false;
    } else if (arg == "--port") {
      tcp = true;
      int_arg(&i, &port);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--run-dir" && i + 1 < argc) {
      cfg.run_dir = argv[++i];
    } else if (arg == "--serve-bin" && i + 1 < argc) {
      cfg.serve_bin = argv[++i];
    } else if (arg == "--deck" && i + 1 < argc) {
      deck = argv[++i];
    } else if (arg == "--threads") {
      int_arg(&i, &ropt.threads);
    } else if (arg == "--queue") {
      int_arg(&i, &ropt.queue_capacity);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      dbl_arg(&i, &ropt.deadline_ms);
    } else if (arg == "--call-timeout-ms" && i + 1 < argc) {
      dbl_arg(&i, &fopt.call_timeout_ms);
    } else if (arg == "--hedge-ms" && i + 1 < argc) {
      dbl_arg(&i, &fopt.hedge_ms);
    } else if (arg == "--retries") {
      int_arg(&i, &fopt.retry.retries);
    } else if (arg == "--backoff-ms" && i + 1 < argc) {
      dbl_arg(&i, &fopt.retry.backoff_ms);
    } else if (arg == "--probe-timeout-ms" && i + 1 < argc) {
      dbl_arg(&i, &fopt.health.probe_timeout_ms);
    } else if (arg == "--suspect-after") {
      int_arg(&i, &fopt.health.suspect_after);
    } else if (arg == "--down-after") {
      int_arg(&i, &fopt.health.down_after);
    } else if (arg == "--supervise-ms" && i + 1 < argc) {
      dbl_arg(&i, &supervise_ms);
    } else if (arg == "--no-restart") {
      no_restart = true;
    } else if (arg == "--shard-fault" && i + 2 < argc) {
      const int k = std::atoi(argv[++i]);
      shard_faults.emplace_back(k, argv[++i]);
    } else if (arg == "--fault-spec" && i + 1 < argc) {
      std::string error;
      if (!support::parse_fault_plan(argv[++i], &fault_plan(), &error)) {
        std::fprintf(stderr, "bad --fault-spec: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--shard-threads") {
      int_arg(&i, &cfg.shard_threads);
    } else {
      return usage();
    }
  }
  if (shards < 1 || replicas < 0) return usage();
  if (!fault_plan().empty()) support::arm_fault_plan(&fault_plan());

  cfg.shard_count = shards;
  cfg.shard_fault.assign(static_cast<std::size_t>(shards), "");
  for (const auto& [k, spec] : shard_faults) {
    if (k < 0 || k >= shards) {
      std::fprintf(stderr, "--shard-fault index out of range: %d\n", k);
      return 2;
    }
    cfg.shard_fault[static_cast<std::size_t>(k)] = spec;
  }
  if (cfg.serve_bin.empty()) {
    // Default: qwm_serve next to this binary.
    std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    cfg.serve_bin =
        (slash == std::string::npos ? std::string() : self.substr(0, slash + 1)) +
        "qwm_serve";
  }
  if (cfg.run_dir.empty())
    cfg.run_dir = "/tmp/qwm_router." + std::to_string(::getpid());
  std::string mkdir_cmd = "mkdir -p '" + cfg.run_dir + "'";
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create run dir %s\n", cfg.run_dir.c_str());
    return 1;
  }

  // Spawn the fleet.
  std::vector<Child> shard_children(static_cast<std::size_t>(shards));
  std::vector<Child> replica_children(static_cast<std::size_t>(replicas));
  std::vector<std::unique_ptr<service::ShardEndpoint>> shard_eps, replica_eps;
  for (int s = 0; s < shards; ++s) {
    shard_children[static_cast<std::size_t>(s)] = spawn_child(cfg, s, -1);
    if (shard_children[static_cast<std::size_t>(s)].pid < 0) {
      std::fprintf(stderr, "failed to spawn shard %d\n", s);
      return 1;
    }
    shard_eps.push_back(std::make_unique<service::TcpEndpoint>(
        shard_children[static_cast<std::size_t>(s)].port));
    std::fprintf(stderr, "qwm_router: shard %d pid %d port %d\n", s,
                 shard_children[static_cast<std::size_t>(s)].pid,
                 shard_children[static_cast<std::size_t>(s)].port);
  }
  for (int r = 0; r < replicas; ++r) {
    replica_children[static_cast<std::size_t>(r)] = spawn_child(cfg, -1, r);
    if (replica_children[static_cast<std::size_t>(r)].pid < 0) {
      std::fprintf(stderr, "failed to spawn replica %d\n", r);
      return 1;
    }
    replica_eps.push_back(std::make_unique<service::TcpEndpoint>(
        replica_children[static_cast<std::size_t>(r)].port));
    std::fprintf(stderr, "qwm_router: replica %d pid %d port %d\n", r,
                 replica_children[static_cast<std::size_t>(r)].pid,
                 replica_children[static_cast<std::size_t>(r)].port);
  }

  service::Fleet fleet(fopt, std::move(shard_eps), std::move(replica_eps));
  if (!no_restart) {
    fleet.set_restart_fn(
        [&cfg, &shard_children](int shard)
            -> std::unique_ptr<service::ShardEndpoint> {
          // The refuse-restart fault site models an orchestrator that
          // cannot bring the process back (quota, node loss) — the
          // supervisor must keep degrading and retry later.
          if (support::fire_fault(support::FaultSite::kRefuseRestart)) {
            std::fprintf(stderr,
                         "qwm_router: restart of shard %d refused "
                         "(injected)\n", shard);
            return nullptr;
          }
          Child& old = shard_children[static_cast<std::size_t>(shard)];
          if (old.pid > 0) {
            ::kill(old.pid, SIGKILL);
            ::waitpid(old.pid, nullptr, 0);
          }
          const Child fresh = spawn_child(cfg, shard, -1);
          if (fresh.pid < 0) return nullptr;
          old = fresh;
          std::fprintf(stderr,
                       "qwm_router: restarted shard %d pid %d port %d\n",
                       shard, fresh.pid, fresh.port);
          return std::make_unique<service::TcpEndpoint>(fresh.port);
        });
  }

  service::Router router(&fleet, ropt);

  if (!deck.empty()) {
    const std::string resp = fleet.handle_line("LOAD " + deck);
    std::fprintf(stderr, "qwm_router: preload: %s\n", resp.c_str());
    if (!service::is_ok(resp)) return 1;
  }

  // Supervisor: periodic probe + failover + restart passes, plus child
  // zombie reaping (a crashed shard must not linger undead).
  std::atomic<bool> stop_supervisor{false};
  std::thread supervisor;
  if (supervise_ms > 0.0) {
    supervisor = std::thread([&] {
      while (!stop_supervisor.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(supervise_ms));
        if (stop_supervisor.load(std::memory_order_acquire)) break;
        while (::waitpid(-1, nullptr, WNOHANG) > 0) {
        }
        fleet.supervise();
      }
    });
  }

  int rc = 0;
  if (!tcp) {
    rc = router.serve_stream(std::cin, std::cout);
  } else {
    if (!router.listen(port)) {
      std::fprintf(stderr, "cannot bind 127.0.0.1:%d: %s\n", port,
                   router.listen_error().c_str());
      rc = 1;
    } else {
      if (!port_file.empty()) {
        std::ofstream pf(port_file);
        pf << router.port() << "\n";
      }
      std::fprintf(stderr, "qwm_router: listening on 127.0.0.1:%d (%d "
                           "shards, %d replicas)\n",
                   router.port(), shards, replicas);
      router.serve();
    }
  }

  stop_supervisor.store(true, std::memory_order_release);
  if (supervisor.joinable()) supervisor.join();
  fleet.broadcast_shutdown();
  for (const auto& c : shard_children)
    if (c.pid > 0) ::waitpid(c.pid, nullptr, 0);
  for (const auto& c : replica_children)
    if (c.pid > 0) ::waitpid(c.pid, nullptr, 0);
  std::fprintf(stderr, "qwm_router: clean shutdown\n");
  return rc;
}
