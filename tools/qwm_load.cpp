// qwm_load — multi-threaded load generator for the qwm_serve daemon.
//
//   qwm_load --port N --deck <path> [options]
//
//   --clients N      concurrent client connections        (default 8)
//   --requests M     requests per client                  (default 200)
//   --period <v>     clock period for SLACK queries       (default 2n)
//   --what-if K      add one writer client running K RESIZE+UPDATE
//                    transactions while the readers hammer queries
//   --verify         parse + analyze the deck locally (single-threaded
//                    engine) and require every base-epoch ARRIVAL/SLACK
//                    response to be bit-identical to the local answer
//   --no-cache       run the --verify reference engine with the
//                    stage-eval memo cache off — required when verifying
//                    against a sharded qwm_router fleet, whose shards run
//                    cache-off so answers are slice-invariant
//   --no-load        skip sending LOAD (daemon already has the deck)
//   --shutdown       send SHUTDOWN when done
//   --seed S         workload RNG seed                    (default 1)
//   --retries N      bounded retries on transient error codes (the
//                    protocol's retryable set: BUSY, DEADLINE, DEGRADED,
//                    SHARD_DOWN) with jittered exponential backoff from
//                    support/retry.h                      (default 0)
//   --backoff-ms X   base backoff; attempt k sleeps
//                    X * 2^k * [0.5, 1.5) ms              (default 5)
//   --hedge-ms X     client-side bounded hedging: an ARRIVAL/SLACK read
//                    not answered within X ms is re-sent on a second
//                    connection (one hedge per request) and the primary
//                    connection is resynced              (default off)
//   --json           print the summary as one JSON object on stdout
//                    (attempts, retries by error code, hedge wins,
//                    latency percentiles) instead of the text report
//
// Workload mix per reader: 70% ARRIVAL, 15% SLACK, 10% CRITPATH,
// 5% STATS, over the design's stage-output and primary-input nets.
// Reports total QPS, per-verb counts, and p50/p99/max latency.
// Exit status: nonzero on connect failures, hard ERR responses
// (anything outside the retryable set), or verification mismatches.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/netlist/apply_models.h"
#include "qwm/netlist/parser.h"
#include "qwm/service/protocol.h"
#include "qwm/sta/sta.h"
#include "qwm/support/retry.h"

namespace {

using namespace qwm;
using Clock = std::chrono::steady_clock;

int usage() {
  std::fprintf(stderr,
               "usage: qwm_load --port N --deck path [--clients N] "
               "[--requests M] [--period v]\n"
               "                [--what-if K] [--verify] [--no-load] "
               "[--shutdown] [--seed S]\n"
               "                [--retries N] [--backoff-ms X] "
               "[--hedge-ms X] [--json]\n");
  return 2;
}

/// Minimal line-oriented TCP client.
struct Client {
  int fd = -1;
  int connected_port = -1;
  std::string buf;

  bool connect_to(int port) {
    connected_port = port;
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
        0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    return true;
  }

  /// Bound how long recv_line may block (0 restores blocking reads).
  void set_recv_timeout_ms(double ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec =
        static_cast<suseconds_t>((ms - 1000.0 * static_cast<double>(tv.tv_sec)) *
                                 1000.0);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  /// Drop the connection (abandoning any in-flight request — the strict
  /// request/response protocol has no way to cancel) and dial again.
  bool reconnect() {
    if (fd >= 0) ::close(fd);
    fd = -1;
    buf.clear();
    return connect_to(connected_port);
  }

  bool send_line(const std::string& line) {
    std::string msg = line;
    msg += '\n';
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n =
          ::send(fd, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string* line) {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        *line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// One request/response round trip; empty string on transport failure.
  std::string round_trip(const std::string& req) {
    std::string resp;
    if (!send_line(req) || !recv_line(&resp)) return "";
    return resp;
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }
};

/// Deterministic per-thread mixer (split-mix style).
std::uint64_t next_rand(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Expected {
  std::string arrival_fields;  ///< "rise_valid=... ... fall_slew=..."
  std::string slack_fields;    ///< "valid=... required=... slack=..."
};

struct ReaderResult {
  std::vector<double> latencies_us;
  std::uint64_t sent = 0, ok = 0, busy = 0, deadline = 0, hard_err = 0;
  std::uint64_t shard_down = 0;    ///< ERR SHARD_DOWN left after retries
  std::uint64_t degraded_ok = 0;   ///< "OK DEGRADED" answers accepted
  std::uint64_t degraded_err = 0;  ///< ERR DEGRADED left after retries
  std::uint64_t retries = 0;       ///< backoff retries performed
  /// Retries classified by the error code that triggered them.
  std::map<std::string, std::uint64_t> retries_by_code;
  std::uint64_t hedged = 0;      ///< hedge connections fired
  std::uint64_t hedge_wins = 0;  ///< hedge answered before the primary
  std::uint64_t verified = 0, mismatches = 0;
  bool transport_ok = true;
};

/// Round trip with bounded retries and jittered exponential backoff from
/// support/retry.h; retryability comes from the protocol's shared
/// err_code() classifier (BUSY / DEADLINE / DEGRADED / SHARD_DOWN), the
/// same set the router retries internally.
std::string round_trip_retry(Client* c, const std::string& req,
                             const support::RetryPolicy& policy,
                             std::uint64_t* rng, ReaderResult* r) {
  std::string resp = c->round_trip(req);
  for (int attempt = 0; attempt < policy.retries; ++attempt) {
    if (resp.empty()) return resp;
    const std::string code = service::err_code(resp);
    if (!service::retryable_code(code)) return resp;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        support::retry_backoff_ms(policy, attempt, rng)));
    ++r->retries;
    ++r->retries_by_code[code];
    resp = c->round_trip(req);
  }
  return resp;
}

/// One hedged read: give the primary connection hedge_ms to answer; on
/// expiry fire the same request once on the hedge connection (bounded —
/// one hedge per request, never a cascade) and resync the primary, whose
/// abandoned in-flight reply would otherwise desequence the stream.
std::string round_trip_hedged(Client* primary, Client* hedge,
                              const std::string& req, double hedge_ms,
                              ReaderResult* r) {
  primary->set_recv_timeout_ms(hedge_ms);
  std::string resp = primary->round_trip(req);
  primary->set_recv_timeout_ms(0);
  if (!resp.empty()) return resp;
  ++r->hedged;
  if (!primary->reconnect()) return "";
  resp = hedge->round_trip(req);
  if (!resp.empty()) ++r->hedge_wins;
  return resp;
}

std::string arrival_fields_of(const sta::NetTiming& t) {
  using service::format_double;
  std::string s;
  s += "rise_valid=" + std::string(t.rise.valid() ? "1" : "0");
  s += " rise=" + format_double(t.rise.time);
  s += " rise_slew=" + format_double(t.rise.slew);
  s += " fall_valid=" + std::string(t.fall.valid() ? "1" : "0");
  s += " fall=" + format_double(t.fall.time);
  s += " fall_slew=" + format_double(t.fall.slew);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1, clients = 8, requests = 200, what_if = 0;
  support::RetryPolicy retry_policy;
  double hedge_ms = 0.0;
  bool json = false;
  std::uint64_t seed = 1;
  double period = 2e-9;
  bool verify = false, verify_cache = true, do_load = true,
       do_shutdown = false;
  std::string deck;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) port = std::atoi(argv[++i]);
    else if (arg == "--deck" && i + 1 < argc) deck = argv[++i];
    else if (arg == "--clients" && i + 1 < argc) clients = std::atoi(argv[++i]);
    else if (arg == "--requests" && i + 1 < argc)
      requests = std::atoi(argv[++i]);
    else if (arg == "--period" && i + 1 < argc) {
      if (!netlist::parse_spice_number(argv[++i], &period)) return usage();
    } else if (arg == "--what-if" && i + 1 < argc)
      what_if = std::atoi(argv[++i]);
    else if (arg == "--verify") verify = true;
    else if (arg == "--no-cache") verify_cache = false;
    else if (arg == "--no-load") do_load = false;
    else if (arg == "--shutdown") do_shutdown = true;
    else if (arg == "--seed" && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (arg == "--retries" && i + 1 < argc)
      retry_policy.retries = std::atoi(argv[++i]);
    else if (arg == "--backoff-ms" && i + 1 < argc)
      retry_policy.backoff_ms = std::atof(argv[++i]);
    else if (arg == "--hedge-ms" && i + 1 < argc)
      hedge_ms = std::atof(argv[++i]);
    else if (arg == "--json") json = true;
    else return usage();
  }
  if (retry_policy.retries < 0 || retry_policy.backoff_ms < 0.0 ||
      hedge_ms < 0.0)
    return usage();
  if (port < 0 || deck.empty() || clients < 1 || requests < 1) return usage();

  // Local parse: the query-net universe, and (with --verify) the
  // reference single-threaded engine the responses must match bit for
  // bit — the engine's determinism contract makes the daemon's lane
  // count irrelevant.
  const netlist::ParseResult parsed = netlist::parse_spice_file(deck);
  if (!parsed.ok()) {
    std::fprintf(stderr, "local parse of %s failed: %s\n", deck.c_str(),
                 parsed.errors.front().c_str());
    return 1;
  }
  device::Process proc = device::Process::cmosp35();
  netlist::apply_model_cards(parsed.netlist, &proc);
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};
  auto design = circuit::partition_netlist(parsed.netlist, models);

  std::vector<std::string> nets;
  for (const auto& info : design.stages)
    for (netlist::NetId n : info.output_nets)
      nets.push_back(parsed.netlist.net_name(n));
  for (netlist::NetId n : design.primary_inputs)
    nets.push_back(parsed.netlist.net_name(n));
  if (nets.empty()) {
    std::fprintf(stderr, "deck has no queryable nets\n");
    return 1;
  }

  // Writer target: first NMOS edge in the design.
  int wr_stage = -1, wr_edge = -1;
  for (std::size_t s = 0; s < design.stages.size() && wr_stage < 0; ++s) {
    const auto& stage = design.stages[s].stage;
    for (std::size_t e = 0; e < stage.edge_count(); ++e)
      if (stage.edge(static_cast<circuit::EdgeId>(e)).kind ==
          circuit::DeviceKind::nmos) {
        wr_stage = static_cast<int>(s);
        wr_edge = static_cast<int>(e);
        break;
      }
  }

  std::unordered_map<std::string, Expected> expected;
  if (verify) {
    sta::StaOptions opt;
    opt.threads = 1;
    opt.use_cache = verify_cache;
    sta::StaEngine ref(design, models, opt);
    ref.run();
    const auto slacks = ref.compute_slacks(period);
    for (const auto& name : nets) {
      const auto id = parsed.netlist.find_net(name);
      Expected e;
      e.arrival_fields = arrival_fields_of(ref.timing(*id));
      sta::StaEngine::Slack sl;
      const auto it = slacks.find(*id);
      if (it != slacks.end()) sl = it->second;
      e.slack_fields = "valid=" + std::string(sl.valid ? "1" : "0") +
                       " required=" + service::format_double(sl.required) +
                       " slack=" + service::format_double(sl.slack);
      expected[name] = e;
    }
  }

  // LOAD once (first connection) and learn the base epoch.
  std::uint64_t base_epoch = 0;
  {
    Client c;
    if (!c.connect_to(port)) {
      std::fprintf(stderr, "cannot connect to 127.0.0.1:%d\n", port);
      return 1;
    }
    if (do_load) {
      const std::string resp = c.round_trip("LOAD " + deck);
      if (!service::is_ok(resp)) {
        std::fprintf(stderr, "LOAD failed: %s\n", resp.c_str());
        return 1;
      }
      base_epoch = std::strtoull(
          service::response_field(resp, "epoch").c_str(), nullptr, 10);
    } else {
      const std::string resp = c.round_trip("STATS");
      base_epoch = std::strtoull(
          service::response_field(resp, "epoch").c_str(), nullptr, 10);
    }
  }

  const std::string period_str = service::format_double(period);
  std::vector<ReaderResult> results(static_cast<std::size_t>(clients));
  std::atomic<bool> writer_failed{false};
  std::atomic<std::uint64_t> writer_done{0};

  const auto t_start = Clock::now();
  std::vector<std::thread> threads;
  for (int ci = 0; ci < clients; ++ci) {
    threads.emplace_back([&, ci] {
      ReaderResult& r = results[static_cast<std::size_t>(ci)];
      Client c, hedge;
      if (!c.connect_to(port) || (hedge_ms > 0.0 && !hedge.connect_to(port))) {
        r.transport_ok = false;
        return;
      }
      std::uint64_t rng = seed * 1000003u + static_cast<std::uint64_t>(ci);
      for (int k = 0; k < requests; ++k) {
        const std::uint64_t dice = next_rand(&rng) % 100;
        const std::string& net = nets[next_rand(&rng) % nets.size()];
        std::string req;
        if (dice < 70) req = "ARRIVAL " + net;
        else if (dice < 85) req = "SLACK " + net + " " + period_str;
        else if (dice < 95) req = "CRITPATH";
        else req = "STATS";
        // Hedge only the point reads (ARRIVAL/SLACK): they are cheap to
        // duplicate and dominate the mix; hedged requests skip the retry
        // ladder (the hedge already is the second attempt).
        const bool hedgeable = hedge_ms > 0.0 && dice < 85;
        const auto t0 = Clock::now();
        const std::string resp =
            hedgeable ? round_trip_hedged(&c, &hedge, req, hedge_ms, &r)
                      : round_trip_retry(&c, req, retry_policy, &rng, &r);
        const auto t1 = Clock::now();
        if (resp.empty()) {
          r.transport_ok = false;
          return;
        }
        ++r.sent;
        r.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        if (service::is_ok(resp)) {
          ++r.ok;
          if (service::is_degraded(resp)) ++r.degraded_ok;
        } else {
          const std::string code = service::err_code(resp);
          if (code == "BUSY") ++r.busy;
          else if (code == "DEADLINE") ++r.deadline;
          else if (code == "DEGRADED") ++r.degraded_err;
          else if (code == "SHARD_DOWN") ++r.shard_down;
          else ++r.hard_err;
        }

        // Degraded answers are within-tolerance, not bit-exact: only
        // nominal responses participate in bit-identity verification.
        if (verify && service::is_ok(resp) && !service::is_degraded(resp)) {
          // Only base-epoch responses are comparable to the pre-run
          // reference; the stress test covers epoch-matched what-ifs.
          const std::string ep = service::response_field(resp, "epoch");
          if (ep == std::to_string(base_epoch)) {
            const auto it = expected.find(net);
            bool match = true;
            if (dice < 70 && it != expected.end()) {
              for (const char* key : {"rise_valid", "rise", "rise_slew",
                                      "fall_valid", "fall", "fall_slew"})
                if (service::response_field(resp, key) !=
                    service::response_field("OK " + it->second.arrival_fields,
                                            key))
                  match = false;
              ++r.verified;
            } else if (dice >= 70 && dice < 85 && it != expected.end()) {
              for (const char* key : {"valid", "required", "slack"})
                if (service::response_field(resp, key) !=
                    service::response_field("OK " + it->second.slack_fields,
                                            key))
                  match = false;
              ++r.verified;
            }
            if (!match) {
              ++r.mismatches;
              if (r.mismatches <= 3)
                std::fprintf(stderr, "MISMATCH [%s] got: %s\n", req.c_str(),
                             resp.c_str());
            }
          }
        }
      }
    });
  }

  std::thread writer;
  if (what_if > 0 && wr_stage >= 0) {
    writer = std::thread([&] {
      Client c;
      if (!c.connect_to(port)) {
        writer_failed.store(true);
        return;
      }
      // Let the readers land some base-epoch queries first, so --verify
      // always has comparable responses even with a busy writer.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      std::uint64_t wrng = seed * 7777777u + 99u;
      ReaderResult wr_scratch;
      for (int k = 0; k < what_if; ++k) {
        const double w = (k % 2 == 0) ? 2.5e-6 : 3.0e-6;
        const std::string resize = round_trip_retry(
            &c,
            "RESIZE " + std::to_string(wr_stage) + " " +
                std::to_string(wr_edge) + " " + service::format_double(w),
            retry_policy, &wrng, &wr_scratch);
        const std::string update =
            round_trip_retry(&c, "UPDATE", retry_policy, &wrng, &wr_scratch);
        if (!service::is_ok(resize) || !service::is_ok(update)) {
          // BUSY under overload is load shedding, not failure.
          if (!service::is_err(resize, "BUSY") &&
              !service::is_err(update, "BUSY"))
            writer_failed.store(true);
        } else {
          writer_done.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  for (auto& t : threads) t.join();
  if (writer.joinable()) writer.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t_start).count();

  // Aggregate.
  ReaderResult total;
  std::vector<double> lat;
  bool transport_ok = true;
  for (const auto& r : results) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.busy += r.busy;
    total.deadline += r.deadline;
    total.hard_err += r.hard_err;
    total.shard_down += r.shard_down;
    total.degraded_ok += r.degraded_ok;
    total.degraded_err += r.degraded_err;
    total.retries += r.retries;
    for (const auto& [code, n] : r.retries_by_code)
      total.retries_by_code[code] += n;
    total.hedged += r.hedged;
    total.hedge_wins += r.hedge_wins;
    total.verified += r.verified;
    total.mismatches += r.mismatches;
    transport_ok = transport_ok && r.transport_ok;
    lat.insert(lat.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(lat.begin(), lat.end());
  const auto pct = [&](double p) {
    if (lat.empty()) return 0.0;
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(lat.size() - 1));
    return lat[i];
  };

  if (json) {
    // One-object machine-readable summary: the retry/backoff/hedge
    // observability feed for scripts and the CI failover smoke.
    std::string codes;
    for (const auto& [code, n] : total.retries_by_code) {
      if (!codes.empty()) codes += ", ";
      codes += "\"" + code + "\": " + std::to_string(n);
    }
    std::printf("{\n");
    std::printf("  \"clients\": %d, \"requests_per_client\": %d,\n", clients,
                requests);
    std::printf("  \"sent\": %llu, \"ok\": %llu, \"degraded_ok\": %llu,\n",
                (unsigned long long)total.sent, (unsigned long long)total.ok,
                (unsigned long long)total.degraded_ok);
    std::printf(
        "  \"busy\": %llu, \"deadline\": %llu, \"degraded_err\": %llu, "
        "\"shard_down\": %llu, \"hard_err\": %llu,\n",
        (unsigned long long)total.busy, (unsigned long long)total.deadline,
        (unsigned long long)total.degraded_err,
        (unsigned long long)total.shard_down,
        (unsigned long long)total.hard_err);
    std::printf("  \"retries\": %llu, \"retries_by_code\": {%s},\n",
                (unsigned long long)total.retries, codes.c_str());
    std::printf("  \"hedged\": %llu, \"hedge_wins\": %llu,\n",
                (unsigned long long)total.hedged,
                (unsigned long long)total.hedge_wins);
    std::printf("  \"wall_s\": %.6f, \"qps\": %.1f,\n", wall_s,
                static_cast<double>(total.sent) / wall_s);
    std::printf(
        "  \"latency_us\": {\"p50\": %.1f, \"p99\": %.1f, \"max\": %.1f},\n",
        pct(0.50), pct(0.99), lat.empty() ? 0.0 : lat.back());
    std::printf("  \"what_if_committed\": %llu,\n",
                (unsigned long long)writer_done.load());
    std::printf("  \"verified\": %llu, \"mismatches\": %llu\n",
                (unsigned long long)total.verified,
                (unsigned long long)total.mismatches);
    std::printf("}\n");
  } else {
    std::printf("qwm_load: %d clients x %d requests against 127.0.0.1:%d\n",
                clients, requests, port);
    std::printf("  sent=%llu ok=%llu busy=%llu deadline=%llu hard_err=%llu\n",
                (unsigned long long)total.sent, (unsigned long long)total.ok,
                (unsigned long long)total.busy,
                (unsigned long long)total.deadline,
                (unsigned long long)total.hard_err);
    if (retry_policy.retries > 0 || total.degraded_ok > 0 ||
        total.degraded_err > 0 || total.shard_down > 0) {
      std::printf(
          "  degraded_ok=%llu degraded_err=%llu shard_down=%llu retries=%llu",
          (unsigned long long)total.degraded_ok,
          (unsigned long long)total.degraded_err,
          (unsigned long long)total.shard_down,
          (unsigned long long)total.retries);
      for (const auto& [code, n] : total.retries_by_code)
        std::printf(" retry_%s=%llu", code.c_str(), (unsigned long long)n);
      std::printf("\n");
    }
    if (total.hedged > 0)
      std::printf("  hedged=%llu hedge_wins=%llu\n",
                  (unsigned long long)total.hedged,
                  (unsigned long long)total.hedge_wins);
    std::printf("  wall %.3f s -> %.0f QPS\n", wall_s,
                static_cast<double>(total.sent) / wall_s);
    std::printf("  latency us: p50 %.1f  p99 %.1f  max %.1f\n", pct(0.50),
                pct(0.99), lat.empty() ? 0.0 : lat.back());
    if (what_if > 0)
      std::printf("  what-if transactions committed: %llu/%d\n",
                  (unsigned long long)writer_done.load(), what_if);
    if (verify)
      std::printf("  verified=%llu mismatches=%llu\n",
                  (unsigned long long)total.verified,
                  (unsigned long long)total.mismatches);
  }

  if (do_shutdown) {
    Client c;
    if (c.connect_to(port)) c.round_trip("SHUTDOWN");
  }

  if (!transport_ok) {
    std::fprintf(stderr, "FAIL: transport error on at least one client\n");
    return 1;
  }
  if (total.hard_err > 0 || total.mismatches > 0 || writer_failed.load()) {
    std::fprintf(stderr, "FAIL: hard errors or verification mismatches\n");
    return 1;
  }
  if (verify && total.verified == 0) {
    std::fprintf(stderr, "FAIL: --verify matched no responses\n");
    return 1;
  }
  return 0;
}
