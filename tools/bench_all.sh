#!/usr/bin/env bash
# Runs every --json-capable benchmark harness and consolidates the
# results into one machine-readable document (BENCH_PR9.json by
# default). Usage:
#   tools/bench_all.sh [OUT.json]
# Environment:
#   BUILD=dir   build tree to take the bench binaries from (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${1:-BENCH_PR9.json}

for b in bench_micro_kernels bench_table1_gates bench_incremental_sta \
         bench_service_qps bench_scale_sta; do
  if [[ ! -x "$BUILD/bench/$b" ]]; then
    echo "missing $BUILD/bench/$b — build the repo first" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== bench_micro_kernels =="
"$BUILD/bench/bench_micro_kernels" --json "$tmp/micro_kernels.json"
echo "== bench_table1_gates =="
"$BUILD/bench/bench_table1_gates" --json "$tmp/table1_gates.json"
echo "== bench_incremental_sta =="
"$BUILD/bench/bench_incremental_sta" --json "$tmp/incremental_sta.json"
echo "== bench_incremental_sta --corners (3-corner sweep) =="
"$BUILD/bench/bench_incremental_sta" --corners \
    --json "$tmp/incremental_sta_corners.json"
echo "== bench_service_qps =="
"$BUILD/bench/bench_service_qps" --json "$tmp/service_qps.json"
echo "== bench_scale_sta (10^4 + 10^5 stages, both schedulers, thread sweep) =="
"$BUILD/bench/bench_scale_sta" --threads "1,2,4,$(nproc)" \
    --json "$tmp/scale_sta.json"

python3 - "$OUT" "$tmp" <<'EOF'
import json, os, sys

out, tmp = sys.argv[1], sys.argv[2]
doc = {"generated_by": "tools/bench_all.sh"}
for name in ("micro_kernels", "table1_gates", "incremental_sta",
             "incremental_sta_corners", "service_qps", "scale_sta"):
    with open(os.path.join(tmp, name + ".json")) as f:
        doc[name] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote", out)
EOF
