// qwm_serve — long-lived timing-query daemon over the incremental STA
// engine.
//
//   qwm_serve [--stdio | --port N] [options]
//
//   --stdio             serve one session on stdin/stdout (default)
//   --port N            serve TCP on 127.0.0.1:N (0 = ephemeral)
//   --port-file <path>  write the bound port to <path> (for scripts)
//   --deck <path>       preload a deck before serving
//   --threads N         worker lanes for request dispatch   (default 4)
//   --queue N           admission queue capacity            (default 64)
//   --deadline-ms X     per-request queue-wait deadline     (default off)
//   --solve-deadline-ms X  per-request execution deadline; overruns are
//                       answered ERR DEGRADED               (default off)
//   --sta-threads N     engine lanes per analysis           (default 1)
//   --schedule M        STA stage schedule: levels (default) or deps (the
//                       barrier-free dependency-counting scheduler);
//                       STATS reports the active mode and the deps
//                       ready-queue high-water mark
//   --no-cache          disable the engine's stage-eval memo cache
//   --corners           characterize fast/slow corner models at LOAD and
//                       propagate per-corner arrival lanes (enables the
//                       CORNERS verb)
//   --shard K/N         serve shard K of an N-shard fleet: LOAD analyzes
//                       only the owned slice of the stage graph, exports
//                       BOUNDARY arrivals, ingests SETARR injections;
//                       SLACK/CORNERS are refused (ask a replica)
//   --fault-spec SPEC   arm a deterministic fault plan in this process
//                       (see support/fault_injection.h parse_fault_plan);
//                       e.g. "drop_connection:start=5:count=1" — the
//                       crash-injection knob for fleet failover tests
//
// Protocol (one line per request/response — see src/qwm/service/protocol.h):
//   LOAD <deck.sp> | ARRIVAL <net> | CORNERS <net> [period] |
//   SLACK <net> <period> | CRITPATH | RESIZE <stage> <edge> <width> |
//   UPDATE | STATS | SHUTDOWN
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "qwm/service/server.h"
#include "qwm/support/fault_injection.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qwm_serve [--stdio | --port N] [--port-file path] "
               "[--deck path]\n"
               "                 [--threads N] [--queue N] [--deadline-ms X] "
               "[--solve-deadline-ms X]\n"
               "                 [--sta-threads N] [--schedule levels|deps] "
               "[--no-cache] [--corners]\n"
               "                 [--shard K/N] [--fault-spec SPEC]\n");
  return 2;
}

// The armed plan must outlive every request (arm_fault_plan keeps the
// pointer); a function-local static does.
qwm::support::FaultPlan& fault_plan() {
  static qwm::support::FaultPlan plan;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm;

  service::ServerOptions opt;
  opt.db.sta.threads = 1;
  bool tcp = false;
  int port = 0;
  std::string port_file, deck;

  const auto int_arg = [&](int* i, int* out) {
    if (*i + 1 >= argc) std::exit(usage());
    *out = std::atoi(argv[++*i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      tcp = false;
    } else if (arg == "--port") {
      tcp = true;
      int_arg(&i, &port);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--deck" && i + 1 < argc) {
      deck = argv[++i];
    } else if (arg == "--threads") {
      int_arg(&i, &opt.threads);
    } else if (arg == "--queue") {
      int_arg(&i, &opt.queue_capacity);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      opt.deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--solve-deadline-ms" && i + 1 < argc) {
      opt.solve_deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--sta-threads") {
      int_arg(&i, &opt.db.sta.threads);
    } else if (arg == "--schedule" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "levels") {
        opt.db.sta.schedule = sta::Schedule::levels;
      } else if (mode == "deps") {
        opt.db.sta.schedule = sta::Schedule::deps;
      } else {
        std::fprintf(stderr, "bad --schedule value: %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--no-cache") {
      opt.db.sta.use_cache = false;
    } else if (arg == "--corners") {
      opt.db.corners = true;
    } else if (arg == "--shard" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "bad --shard value (want K/N): %s\n",
                     spec.c_str());
        return 2;
      }
      opt.db.shard_index = std::atoi(spec.substr(0, slash).c_str());
      opt.db.shard_count = std::atoi(spec.substr(slash + 1).c_str());
      if (opt.db.shard_count < 1 || opt.db.shard_index < 0 ||
          opt.db.shard_index >= opt.db.shard_count) {
        std::fprintf(stderr, "bad --shard value (want 0<=K<N): %s\n",
                     spec.c_str());
        return 2;
      }
    } else if (arg == "--fault-spec" && i + 1 < argc) {
      std::string error;
      if (!support::parse_fault_plan(argv[++i], &fault_plan(), &error)) {
        std::fprintf(stderr, "bad --fault-spec: %s\n", error.c_str());
        return 2;
      }
    } else {
      return usage();
    }
  }
  if (opt.threads < 1 || opt.queue_capacity < 0) return usage();

  service::Server server(opt);
  if (!fault_plan().empty()) {
    // Request-level sites fire through the global plan; the reply-path
    // sites (drop/stall/corrupt) live in the transport's own hook.
    support::arm_fault_plan(&fault_plan());
    server.fault_hook().set_plan(fault_plan());
    std::fprintf(stderr, "qwm_serve: fault plan armed (%zu rules)\n",
                 fault_plan().rules.size());
  }
  if (!deck.empty()) {
    const service::LoadReply r = server.db().load_file(deck);
    if (!r.status.ok) {
      std::fprintf(stderr, "preload failed: %s\n", r.status.message.c_str());
      return 1;
    }
    std::fprintf(stderr, "preloaded %s: %zu stages, %zu evals\n", deck.c_str(),
                 r.stages, r.evals);
  }

  if (!tcp) return server.serve_stream(std::cin, std::cout);

  if (!server.listen(port)) {
    std::fprintf(stderr, "cannot bind 127.0.0.1:%d: %s\n", port,
                 server.listen_error().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << server.port() << "\n";
    if (!pf) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "qwm_serve listening on 127.0.0.1:%d\n", server.port());
  server.serve();
  std::fprintf(stderr, "qwm_serve: clean shutdown\n");
  return 0;
}
