// qwm_sim — command-line front end over the whole stack.
//
//   qwm_sim <source> [options]
//
// <source> is a SPICE deck, a structural .blif netlist, or a generator
// spec ("gen:<topo>:<stages>[:seed=<s>][:width=<w>]", topologies grid /
// tree / dag). BLIF and generated designs elaborate through the gate
// library and support --sta only.
//
//   --tran            run the baseline transient engine (uses the deck's
//                     .tran directive, or --tstep/--tstop; SPICE only)
//   --tstep <s>       override step size       (default: deck or 1p)
//   --tstop <s>       override stop time       (default: deck or 1n)
//   --sta [period]    partition the source and run QWM-based static timing
//                     analysis; with a period, also report slacks
//   --threads N       STA worker lanes (same flag as the benches;
//                     results are bit-identical for any N)
//   --schedule M      STA stage schedule: levels (default) or deps (the
//                     barrier-free dependency-counting scheduler;
//                     bit-identical results)
//   --corners         with --sta: characterize fast/slow corner models and
//                     report per-corner worst arrivals plus setup/hold
//                     slack at the given period
//   --no-cache        disable the STA stage-evaluation memo cache
//   --write           echo the elaborated flat netlist as a SPICE deck
//                     (SPICE only)
//   --emit-blif <p>   write the gate netlist of a .blif/gen: source to <p>
//
// The deck may carry .model cards (applied onto the CMOSP35-class process
// defaults), .ic initial conditions, and .print card node selections.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/frontend/elaborate.h"
#include "qwm/frontend/frontend.h"
#include "qwm/netlist/apply_models.h"
#include "qwm/netlist/parser.h"
#include "qwm/netlist/writer.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"
#include "qwm/sta/sta.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qwm_sim <deck.sp|netlist.blif|gen:spec> [--tran] "
               "[--tstep s] [--tstop s] [--sta [period]] [--threads N] "
               "[--schedule levels|deps] [--corners] [--no-cache] [--write] "
               "[--emit-blif path]\n");
  return 2;
}

void run_transient(const qwm::netlist::FlatNetlist& nl,
                   const qwm::device::ModelSet& models, double tstep,
                   double tstop) {
  using namespace qwm;
  std::vector<std::string> errors;
  spice::FlatSim sim = spice::circuit_from_flat(nl, models, &errors);
  for (const auto& e : errors) std::fprintf(stderr, "error: %s\n", e.c_str());
  for (const auto& ic : nl.initial_conditions)
    sim.circuit.set_ic(sim.node_of[ic.net], ic.voltage);

  spice::TransientOptions opt;
  opt.dt = tstep;
  opt.t_stop = tstop;
  const spice::TransientResult res = spice::simulate_transient(sim.circuit, opt);
  if (!res.stats.converged)
    std::fprintf(stderr, "warning: transient had non-converged steps\n");

  // Columns: .print selection, or every net in the deck.
  std::vector<netlist::NetId> cols = nl.print_nets;
  if (cols.empty())
    for (std::size_t i = 1; i < nl.net_count(); ++i)
      cols.push_back(static_cast<netlist::NetId>(i));

  std::printf("# t[s]");
  for (auto n : cols) std::printf(" v(%s)", nl.net_name(n).c_str());
  std::printf("\n");
  const int rows = 50;
  for (int r = 0; r <= rows; ++r) {
    const double t = tstop * r / rows;
    std::printf("%.6e", t);
    for (auto n : cols)
      std::printf(" %8.5f", res.waveforms[sim.node_of[n]].eval(t));
    std::printf("\n");
  }
  std::printf("# steps=%zu nr_iterations=%zu device_evals=%zu\n",
              res.stats.steps, res.stats.nr_iterations,
              res.stats.device_evals);
}

void run_sta(qwm::circuit::PartitionedDesign design,
             const qwm::netlist::FlatNetlist& nl,
             const qwm::device::ModelSet& models, double period, int threads,
             qwm::sta::Schedule schedule, bool use_cache,
             const qwm::device::CornerLibrary* corner_lib) {
  using namespace qwm;
  for (const auto& w : design.warnings)
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  // Mega-circuits have thousands of primary inputs; cap the listing.
  std::printf("%zu logic stages; primary inputs:", design.stages.size());
  std::size_t shown = 0;
  for (auto n : design.primary_inputs) {
    if (++shown > 16) {
      std::printf(" ... (%zu total)", design.primary_inputs.size());
      break;
    }
    std::printf(" %s", nl.net_name(n).c_str());
  }
  std::printf("\n");

  sta::StaOptions opt;
  opt.threads = threads;
  opt.use_cache = use_cache;
  opt.schedule = schedule;
  sta::StaEngine sta =
      corner_lib ? sta::StaEngine(std::move(design), corner_lib->sets(), opt)
                 : sta::StaEngine(std::move(design), models, opt);
  const std::size_t evals = sta.run();
  for (const auto& w : sta.warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::printf("%zu QWM stage evaluations; worst arrival %.2f ps\n", evals,
              sta.worst_arrival() * 1e12);
  const sta::ScheduleStats& ss = sta.schedule_stats();
  std::printf("schedule=%s levels=%zu barrier_syncs=%zu tasks_enqueued=%zu "
              "ready_hwm=%zu chain_edges=%zu steals=%zu "
              "classify_lock_waits=%zu\n",
              schedule == sta::Schedule::deps ? "deps" : "levels", ss.levels,
              ss.barrier_syncs, ss.tasks_enqueued, ss.ready_hwm,
              ss.chain_edges, ss.steal_count, ss.classify_lock_waits);

  std::printf("\ncritical path:\n");
  for (const auto& step : sta.critical_path())
    std::printf("  %-12s %s  %9.2f ps%s\n", nl.net_name(step.net).c_str(),
                step.rising ? "rise" : "fall", step.arrival * 1e12,
                step.stage < 0 ? "  (primary input)" : "");

  if (period > 0.0) {
    std::printf("\nslacks @ period %.2f ps:\n", period * 1e12);
    const auto slacks = sta.compute_slacks(period);
    for (const auto& [net, s] : slacks)
      std::printf("  %-12s required %9.2f ps  slack %9.2f ps%s\n",
                  nl.net_name(net).c_str(), s.required * 1e12,
                  s.slack * 1e12, s.slack < 0 ? "  VIOLATION" : "");
    std::printf("worst slack: %.2f ps\n", sta.worst_slack(period) * 1e12);
  }

  if (sta.multi_corner()) {
    std::printf("\ncorners:\n");
    for (const device::Corner c : sta.corners()) {
      double worst = 0.0;
      for (const auto& info : sta.design().stages) {
        for (auto n : info.output_nets) {
          const sta::NetTiming& t = sta.timing(n, c);
          if (t.rise.valid()) worst = std::max(worst, t.rise.time);
          if (t.fall.valid()) worst = std::max(worst, t.fall.time);
        }
      }
      std::printf("  %-8s worst arrival %9.2f ps\n", device::corner_name(c),
                  worst * 1e12);
    }
    if (period > 0.0) {
      std::printf("setup slack (slowest corner): %9.2f ps%s\n",
                  sta.worst_setup_slack(period) * 1e12,
                  sta.worst_setup_slack(period) < 0 ? "  VIOLATION" : "");
      std::printf("hold slack  (fastest corner): %9.2f ps%s\n",
                  sta.worst_hold_slack() * 1e12,
                  sta.worst_hold_slack() < 0 ? "  VIOLATION" : "");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm;
  if (argc < 2) return usage();

  std::string deck_path;
  std::string emit_blif;
  bool do_tran = false, do_sta = false, do_write = false;
  bool use_cache = true, do_corners = false;
  int threads = 1;
  sta::Schedule schedule = sta::Schedule::levels;
  double tstep = -1.0, tstop = -1.0, period = -1.0;
  // CLI values accept SPICE suffixes ("1p", "500p", "2n").
  const auto num_arg = [&](const char* s, double* out) {
    if (!netlist::parse_spice_number(s, out)) {
      std::fprintf(stderr, "bad numeric argument: %s\n", s);
      std::exit(2);
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tran") {
      do_tran = true;
    } else if (arg == "--tstep" && i + 1 < argc) {
      num_arg(argv[++i], &tstep);
    } else if (arg == "--tstop" && i + 1 < argc) {
      num_arg(argv[++i], &tstop);
    } else if (arg == "--sta") {
      do_sta = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') num_arg(argv[++i], &period);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "bad --threads value: %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--schedule" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "levels") {
        schedule = sta::Schedule::levels;
      } else if (mode == "deps") {
        schedule = sta::Schedule::deps;
      } else {
        std::fprintf(stderr, "bad --schedule value: %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--corners") {
      do_corners = true;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--write") {
      do_write = true;
    } else if (arg == "--emit-blif" && i + 1 < argc) {
      emit_blif = argv[++i];
    } else if (arg[0] == '-') {
      return usage();
    } else {
      deck_path = arg;
    }
  }
  if (deck_path.empty()) return usage();

  // Gate-level sources (.blif / gen:) skip the SPICE pipeline entirely.
  if (frontend::is_frontend_source(deck_path)) {
    if (do_tran || do_write) {
      std::fprintf(stderr,
                   "error: --tran/--write need a SPICE deck; %s is a "
                   "gate-level source\n",
                   deck_path.c_str());
      return 2;
    }
    const frontend::BlifResult loaded =
        frontend::load_gate_netlist(deck_path);
    for (const auto& w : loaded.warnings)
      std::fprintf(stderr, "warning: %s\n", w.c_str());
    if (!loaded.ok()) {
      for (const auto& e : loaded.errors)
        std::fprintf(stderr, "error: %s\n", e.c_str());
      return 1;
    }
    std::printf("%s: %zu gates, %zu inputs, %zu outputs\n", deck_path.c_str(),
                loaded.netlist.gates.size(), loaded.netlist.inputs.size(),
                loaded.netlist.outputs.size());
    if (!emit_blif.empty()) {
      std::string error;
      if (!frontend::write_blif_file(loaded.netlist, emit_blif, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::printf("wrote %s\n", emit_blif.c_str());
    }
    if (!do_sta) return 0;

    device::Process proc = device::Process::cmosp35();
    const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
    const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
    const device::ModelSet models{&nmos, &pmos, &proc};
    std::unique_ptr<device::CornerLibrary> corner_lib;
    if (do_corners) corner_lib = std::make_unique<device::CornerLibrary>(proc);
    frontend::ElaboratedDesign elab =
        frontend::elaborate(loaded.netlist, models);
    run_sta(std::move(elab.design), elab.nl, models, period, threads,
            schedule, use_cache, corner_lib.get());
    return 0;
  }

  const netlist::ParseResult parsed = netlist::parse_spice_file(deck_path);
  for (const auto& w : parsed.warnings)
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  if (!parsed.ok()) {
    for (const auto& e : parsed.errors)
      std::fprintf(stderr, "error: %s\n", e.c_str());
    return 1;
  }

  device::Process proc = device::Process::cmosp35();
  for (const auto& w : netlist::apply_model_cards(parsed.netlist, &proc))
    std::fprintf(stderr, "warning: %s\n", w.c_str());

  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};

  if (do_write) std::fputs(netlist::write_spice(parsed.netlist).c_str(), stdout);

  if (do_tran || parsed.netlist.tran.present) {
    const double step =
        tstep > 0 ? tstep
                  : (parsed.netlist.tran.present ? parsed.netlist.tran.tstep
                                                 : 1e-12);
    const double stop =
        tstop > 0 ? tstop
                  : (parsed.netlist.tran.present ? parsed.netlist.tran.tstop
                                                 : 1e-9);
    run_transient(parsed.netlist, models, step, stop);
  }
  if (do_sta) {
    // Corner models are only characterized when asked for — three grids
    // instead of one is real load-time work.
    std::unique_ptr<device::CornerLibrary> corner_lib;
    if (do_corners)
      corner_lib = std::make_unique<device::CornerLibrary>(proc);
    auto design = circuit::partition_netlist(parsed.netlist, models);
    run_sta(std::move(design), parsed.netlist, models, period, threads,
            schedule, use_cache, corner_lib.get());
  }
  if (!do_tran && !do_sta && !do_write && !parsed.netlist.tran.present) {
    std::fprintf(stderr, "deck parsed OK (%zu mosfets, %zu nets); nothing "
                 "to do — pass --tran or --sta\n",
                 parsed.netlist.mosfets.size(), parsed.netlist.net_count());
  }
  return 0;
}
