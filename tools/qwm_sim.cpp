// qwm_sim — command-line front end over the whole stack.
//
//   qwm_sim <deck.sp> [options]
//
//   --tran            run the baseline transient engine (uses the deck's
//                     .tran directive, or --tstep/--tstop)
//   --tstep <s>       override step size       (default: deck or 1p)
//   --tstop <s>       override stop time       (default: deck or 1n)
//   --sta [period]    partition the deck and run QWM-based static timing
//                     analysis; with a period, also report slacks
//   --threads N       STA worker lanes (same flag as the benches;
//                     results are bit-identical for any N)
//   --corners         with --sta: characterize fast/slow corner models and
//                     report per-corner worst arrivals plus setup/hold
//                     slack at the given period
//   --no-cache        disable the STA stage-evaluation memo cache
//   --write           echo the elaborated flat netlist as a SPICE deck
//
// The deck may carry .model cards (applied onto the CMOSP35-class process
// defaults), .ic initial conditions, and .print card node selections.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/netlist/apply_models.h"
#include "qwm/netlist/parser.h"
#include "qwm/netlist/writer.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"
#include "qwm/sta/sta.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qwm_sim <deck.sp> [--tran] [--tstep s] [--tstop s] "
               "[--sta [period]] [--threads N] [--corners] [--no-cache] "
               "[--write]\n");
  return 2;
}

void run_transient(const qwm::netlist::FlatNetlist& nl,
                   const qwm::device::ModelSet& models, double tstep,
                   double tstop) {
  using namespace qwm;
  std::vector<std::string> errors;
  spice::FlatSim sim = spice::circuit_from_flat(nl, models, &errors);
  for (const auto& e : errors) std::fprintf(stderr, "error: %s\n", e.c_str());
  for (const auto& ic : nl.initial_conditions)
    sim.circuit.set_ic(sim.node_of[ic.net], ic.voltage);

  spice::TransientOptions opt;
  opt.dt = tstep;
  opt.t_stop = tstop;
  const spice::TransientResult res = spice::simulate_transient(sim.circuit, opt);
  if (!res.stats.converged)
    std::fprintf(stderr, "warning: transient had non-converged steps\n");

  // Columns: .print selection, or every net in the deck.
  std::vector<netlist::NetId> cols = nl.print_nets;
  if (cols.empty())
    for (std::size_t i = 1; i < nl.net_count(); ++i)
      cols.push_back(static_cast<netlist::NetId>(i));

  std::printf("# t[s]");
  for (auto n : cols) std::printf(" v(%s)", nl.net_name(n).c_str());
  std::printf("\n");
  const int rows = 50;
  for (int r = 0; r <= rows; ++r) {
    const double t = tstop * r / rows;
    std::printf("%.6e", t);
    for (auto n : cols)
      std::printf(" %8.5f", res.waveforms[sim.node_of[n]].eval(t));
    std::printf("\n");
  }
  std::printf("# steps=%zu nr_iterations=%zu device_evals=%zu\n",
              res.stats.steps, res.stats.nr_iterations,
              res.stats.device_evals);
}

void run_sta(const qwm::netlist::FlatNetlist& nl,
             const qwm::device::ModelSet& models, double period, int threads,
             bool use_cache, const qwm::device::CornerLibrary* corner_lib) {
  using namespace qwm;
  auto design = circuit::partition_netlist(nl, models);
  for (const auto& w : design.warnings)
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::printf("%zu logic stages; primary inputs:", design.stages.size());
  for (auto n : design.primary_inputs)
    std::printf(" %s", nl.net_name(n).c_str());
  std::printf("\n");

  sta::StaOptions opt;
  opt.threads = threads;
  opt.use_cache = use_cache;
  sta::StaEngine sta =
      corner_lib ? sta::StaEngine(std::move(design), corner_lib->sets(), opt)
                 : sta::StaEngine(std::move(design), models, opt);
  const std::size_t evals = sta.run();
  for (const auto& w : sta.warnings())
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::printf("%zu QWM stage evaluations; worst arrival %.2f ps\n", evals,
              sta.worst_arrival() * 1e12);

  std::printf("\ncritical path:\n");
  for (const auto& step : sta.critical_path())
    std::printf("  %-12s %s  %9.2f ps%s\n", nl.net_name(step.net).c_str(),
                step.rising ? "rise" : "fall", step.arrival * 1e12,
                step.stage < 0 ? "  (primary input)" : "");

  if (period > 0.0) {
    std::printf("\nslacks @ period %.2f ps:\n", period * 1e12);
    const auto slacks = sta.compute_slacks(period);
    for (const auto& [net, s] : slacks)
      std::printf("  %-12s required %9.2f ps  slack %9.2f ps%s\n",
                  nl.net_name(net).c_str(), s.required * 1e12,
                  s.slack * 1e12, s.slack < 0 ? "  VIOLATION" : "");
    std::printf("worst slack: %.2f ps\n", sta.worst_slack(period) * 1e12);
  }

  if (sta.multi_corner()) {
    std::printf("\ncorners:\n");
    for (const device::Corner c : sta.corners()) {
      double worst = 0.0;
      for (const auto& info : sta.design().stages) {
        for (auto n : info.output_nets) {
          const sta::NetTiming& t = sta.timing(n, c);
          if (t.rise.valid()) worst = std::max(worst, t.rise.time);
          if (t.fall.valid()) worst = std::max(worst, t.fall.time);
        }
      }
      std::printf("  %-8s worst arrival %9.2f ps\n", device::corner_name(c),
                  worst * 1e12);
    }
    if (period > 0.0) {
      std::printf("setup slack (slowest corner): %9.2f ps%s\n",
                  sta.worst_setup_slack(period) * 1e12,
                  sta.worst_setup_slack(period) < 0 ? "  VIOLATION" : "");
      std::printf("hold slack  (fastest corner): %9.2f ps%s\n",
                  sta.worst_hold_slack() * 1e12,
                  sta.worst_hold_slack() < 0 ? "  VIOLATION" : "");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm;
  if (argc < 2) return usage();

  std::string deck_path;
  bool do_tran = false, do_sta = false, do_write = false;
  bool use_cache = true, do_corners = false;
  int threads = 1;
  double tstep = -1.0, tstop = -1.0, period = -1.0;
  // CLI values accept SPICE suffixes ("1p", "500p", "2n").
  const auto num_arg = [&](const char* s, double* out) {
    if (!netlist::parse_spice_number(s, out)) {
      std::fprintf(stderr, "bad numeric argument: %s\n", s);
      std::exit(2);
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tran") {
      do_tran = true;
    } else if (arg == "--tstep" && i + 1 < argc) {
      num_arg(argv[++i], &tstep);
    } else if (arg == "--tstop" && i + 1 < argc) {
      num_arg(argv[++i], &tstop);
    } else if (arg == "--sta") {
      do_sta = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') num_arg(argv[++i], &period);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "bad --threads value: %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--corners") {
      do_corners = true;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--write") {
      do_write = true;
    } else if (arg[0] == '-') {
      return usage();
    } else {
      deck_path = arg;
    }
  }
  if (deck_path.empty()) return usage();

  const netlist::ParseResult parsed = netlist::parse_spice_file(deck_path);
  for (const auto& w : parsed.warnings)
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  if (!parsed.ok()) {
    for (const auto& e : parsed.errors)
      std::fprintf(stderr, "error: %s\n", e.c_str());
    return 1;
  }

  device::Process proc = device::Process::cmosp35();
  for (const auto& w : netlist::apply_model_cards(parsed.netlist, &proc))
    std::fprintf(stderr, "warning: %s\n", w.c_str());

  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};

  if (do_write) std::fputs(netlist::write_spice(parsed.netlist).c_str(), stdout);

  if (do_tran || parsed.netlist.tran.present) {
    const double step =
        tstep > 0 ? tstep
                  : (parsed.netlist.tran.present ? parsed.netlist.tran.tstep
                                                 : 1e-12);
    const double stop =
        tstop > 0 ? tstop
                  : (parsed.netlist.tran.present ? parsed.netlist.tran.tstop
                                                 : 1e-9);
    run_transient(parsed.netlist, models, step, stop);
  }
  if (do_sta) {
    // Corner models are only characterized when asked for — three grids
    // instead of one is real load-time work.
    std::unique_ptr<device::CornerLibrary> corner_lib;
    if (do_corners)
      corner_lib = std::make_unique<device::CornerLibrary>(proc);
    run_sta(parsed.netlist, models, period, threads, use_cache,
            corner_lib.get());
  }
  if (!do_tran && !do_sta && !do_write && !parsed.netlist.tran.present) {
    std::fprintf(stderr, "deck parsed OK (%zu mosfets, %zu nets); nothing "
                 "to do — pass --tran or --sta\n",
                 parsed.netlist.mosfets.size(), parsed.netlist.net_count());
  }
  return 0;
}
