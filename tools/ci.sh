#!/usr/bin/env bash
# Tier-1 CI gate: the labelled test suites, run twice —
#   1. plain (RelWithDebInfo, preset `default`), and
#   2. under ThreadSanitizer (preset `tsan`) to catch data races in the
#      parallel level-synchronous scheduler and the shared memo cache.
# Usage: tools/ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_tsan=0
[[ "${1:-}" == "--skip-tsan" ]] && skip_tsan=1

echo "== configure + build (default) =="
cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)"

echo "== tier1 tests (plain) =="
ctest --preset tier1

if [[ "$skip_tsan" == 1 ]]; then
  echo "== tier1 under TSan: SKIPPED (--skip-tsan) =="
  exit 0
fi

echo "== configure + build (tsan) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j"$(nproc)"

echo "== tier1 tests (ThreadSanitizer) =="
ctest --preset tsan-tier1

echo "CI gate passed: tier1 clean, plain and under TSan."
