#!/usr/bin/env bash
# Tier-1 CI gate: the labelled test suites, run twice —
#   1. plain (RelWithDebInfo, preset `default`), and
#   2. under ThreadSanitizer (preset `tsan`) to catch data races in the
#      parallel level-synchronous scheduler, the dependency-counting
#      async scheduler (the tier1-labelled deps stress test runs under
#      both presets), the shared memo cache, and the qwm_serve dispatch
#      layer —
# plus a service smoke stage driving the qwm_serve daemon over both
# transports (scripted stdio exchange; TCP round with qwm_load), a
# deterministic perf-regression smoke comparing the pinned counter
# workloads of bench_micro_kernels and bench_scale_sta against
# tools/perf_budget.json, a scale smoke (full STA of a 10^5-stage
# generated design under wall-clock and RSS caps), and an
# ASan+UBSan stage (preset `asan`) that re-runs tier1 and then sweeps the
# differential QWM-vs-SPICE fuzz harness at 2000 samples with the pinned
# seed.
# Usage: tools/ci.sh [--skip-tsan] [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_tsan=0
skip_asan=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) skip_tsan=1 ;;
    --skip-asan) skip_asan=1 ;;
    *) echo "unknown flag: $arg"; exit 2 ;;
  esac
done

echo "== configure + build (default) =="
cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)"

echo "== tier1 tests (plain) =="
ctest --preset tier1

echo "== tier1 bit-exactness suites (forced scalar frame kernel) =="
# The frame-kernel dispatch picks the best backend at startup (AVX2 on
# capable hosts), so the plain run above covered that side. This pass
# pins QWM_SIMD_BACKEND=scalar and re-runs the arithmetic-contract
# suites so the portable backend's results gate CI on every host. On
# AVX2 hosts the SimdBackend/SimdSched suites additionally compare the
# two backends bitwise; on others they skip and this pass is the
# scalar coverage.
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  echo "host has AVX2: plain tier1 ran the AVX2 backend"
else
  echo "host has no AVX2: dispatch already scalar; re-run is a pin check"
fi
QWM_SIMD_BACKEND=scalar ctest --preset tier1 \
    -R 'SimdBackend|SimdSched|BatchFrame|FaultLadder|DepsSta|Golden'

echo "== service smoke (stdio) =="
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cat > "$smoke_dir/chain.sp" <<'DECK'
ci smoke chain
vdd vdd 0 3.3
vin in 0 0
mn0 s1 in 0 0 nmos W=1.5u L=0.35u
mp0 s1 in vdd vdd pmos W=3u L=0.35u
mn1 out s1 0 0 nmos W=1.5u L=0.35u
mp1 out s1 vdd vdd pmos W=3u L=0.35u
cl out 0 20f
.end
DECK
stdio_out=$(printf 'LOAD %s\nARRIVAL out\nRESIZE 0 0 2.5u\nUPDATE\nSTATS\nSHUTDOWN\n' \
    "$smoke_dir/chain.sp" | ./build/tools/qwm_serve --stdio 2>/dev/null)
echo "$stdio_out"
# Six requests -> six responses, all OK, ending with the shutdown ack.
[[ $(echo "$stdio_out" | wc -l) -eq 6 ]] || { echo "stdio smoke: expected 6 responses"; exit 1; }
[[ -z $(echo "$stdio_out" | grep -v '^OK') ]] || { echo "stdio smoke: non-OK response"; exit 1; }
[[ $(echo "$stdio_out" | tail -1) == "OK bye" ]] || { echo "stdio smoke: missing shutdown ack"; exit 1; }

echo "== service smoke (TCP: qwm_serve + qwm_load) =="
./build/tools/qwm_serve --port 0 --port-file "$smoke_dir/port" --threads 4 \
    2> "$smoke_dir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do [[ -s "$smoke_dir/port" ]] && break; sleep 0.1; done
[[ -s "$smoke_dir/port" ]] || { echo "qwm_serve did not write its port"; kill "$serve_pid"; exit 1; }
./build/tools/qwm_load --port "$(cat "$smoke_dir/port")" \
    --deck "$smoke_dir/chain.sp" --clients 8 --requests 50 \
    --what-if 3 --verify --shutdown
wait "$serve_pid" || { echo "qwm_serve exited non-zero"; exit 1; }
grep -q "clean shutdown" "$smoke_dir/serve.log" || { echo "qwm_serve: no clean shutdown"; exit 1; }
echo "service smoke passed"

echo "== sharded service smoke (qwm_router: degrade + reconverge) =="
# A 12-stage chain so every shard of a 3-way level-major split owns a
# real cone; qwm_load --verify --no-cache re-times every answered net in
# a single-process engine, so "mismatches: 0" is the bit-exactness gate
# for the scatter-gather data plane.
{
  echo "ci sharded smoke chain"
  echo "vdd vdd 0 3.3"
  echo "vin in 0 0"
  prev=in
  for i in $(seq 0 11); do
    out="s$((i + 1))"; [[ "$i" == 11 ]] && out=out
    echo "mn$i $out $prev 0 0 nmos W=1.5u L=0.35u"
    echo "mp$i $out $prev vdd vdd pmos W=3u L=0.35u"
    prev=$out
  done
  echo "cl out 0 20f"
  echo ".end"
} > "$smoke_dir/shard_chain.sp"
json_field() {  # json_field <file> <key> -> value (integers only)
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])' "$1" "$2"
}

# Phase A: restarts disabled -- killing a shard must degrade its cone
# (OK DEGRADED from the replica), never produce hard errors.
./build/tools/qwm_router --shards 3 --port 0 --port-file "$smoke_dir/router_a.port" \
    --run-dir "$smoke_dir/run_a" --deck "$smoke_dir/shard_chain.sp" \
    --no-restart --supervise-ms 100 --suspect-after 1 --down-after 1 \
    2> "$smoke_dir/router_a.log" &
router_a=$!
for _ in $(seq 100); do [[ -s "$smoke_dir/router_a.port" ]] && break; sleep 0.1; done
[[ -s "$smoke_dir/router_a.port" ]] || { echo "qwm_router (A) did not write its port"; exit 1; }
./build/tools/qwm_load --port "$(cat "$smoke_dir/router_a.port")" \
    --deck "$smoke_dir/shard_chain.sp" --no-load --clients 2 --requests 40 \
    --retries 2 --verify --no-cache --json > "$smoke_dir/shard_base.json"
[[ $(json_field "$smoke_dir/shard_base.json" mismatches) == 0 ]] \
    || { echo "sharded smoke: baseline fleet answers diverge from the engine"; exit 1; }
kill -9 "$(cat "$smoke_dir/run_a/shard1.pid")"
sleep 0.5  # let a supervisor probe pass see the corpse
./build/tools/qwm_load --port "$(cat "$smoke_dir/router_a.port")" \
    --deck "$smoke_dir/shard_chain.sp" --no-load --clients 2 --requests 40 \
    --retries 2 --json > "$smoke_dir/shard_kill.json"
[[ $(json_field "$smoke_dir/shard_kill.json" degraded_ok) -gt 0 ]] \
    || { echo "sharded smoke: no degraded answers after killing shard 1"; exit 1; }
[[ $(json_field "$smoke_dir/shard_kill.json" hard_err) == 0 ]] \
    || { echo "sharded smoke: hard errors during degraded operation"; exit 1; }
./build/tools/qwm_load --port "$(cat "$smoke_dir/router_a.port")" \
    --deck "$smoke_dir/shard_chain.sp" --no-load --requests 1 --shutdown \
    --json > /dev/null
wait "$router_a" || { echo "qwm_router (A) exited non-zero"; exit 1; }

# Phase B: supervision on -- the restarted shard re-warms from the
# mutation log and the fleet reconverges bit-identically.
./build/tools/qwm_router --shards 3 --port 0 --port-file "$smoke_dir/router_b.port" \
    --run-dir "$smoke_dir/run_b" --deck "$smoke_dir/shard_chain.sp" \
    --supervise-ms 100 --suspect-after 1 --down-after 1 \
    2> "$smoke_dir/router_b.log" &
router_b=$!
for _ in $(seq 100); do [[ -s "$smoke_dir/router_b.port" ]] && break; sleep 0.1; done
[[ -s "$smoke_dir/router_b.port" ]] || { echo "qwm_router (B) did not write its port"; exit 1; }
kill -9 "$(cat "$smoke_dir/run_b/shard2.pid")"
python3 - "$smoke_dir/router_b.port" <<'EOF' \
    || { echo "sharded smoke: fleet did not reconverge to healthy"; exit 1; }
import socket, sys, time
port = int(open(sys.argv[1]).read())
deadline = time.time() + 20
while time.time() < deadline:
    with socket.create_connection(("127.0.0.1", port), timeout=5) as s:
        f = s.makefile("rw")
        f.write("HEALTH\n"); f.flush()
        line = f.readline()
    if "states=healthy,healthy,healthy" in line:
        sys.exit(0)
    time.sleep(0.2)
sys.exit(1)
EOF
./build/tools/qwm_load --port "$(cat "$smoke_dir/router_b.port")" \
    --deck "$smoke_dir/shard_chain.sp" --no-load --clients 2 --requests 40 \
    --retries 2 --verify --no-cache --shutdown --json > "$smoke_dir/shard_heal.json"
[[ $(json_field "$smoke_dir/shard_heal.json" mismatches) == 0 ]] \
    || { echo "sharded smoke: post-restart answers diverge from the engine"; exit 1; }
[[ $(json_field "$smoke_dir/shard_heal.json" degraded_ok) == 0 ]] \
    || { echo "sharded smoke: degraded answers after reconvergence"; exit 1; }
wait "$router_b" || { echo "qwm_router (B) exited non-zero"; exit 1; }
grep -q "clean shutdown" "$smoke_dir/router_b.log" \
    || { echo "qwm_router (B): no clean shutdown"; exit 1; }
echo "sharded service smoke passed"

echo "== perf smoke (work-counter budget) =="
# Counters (Newton iterations, device evaluations, workspace growth) are
# machine-deterministic, so this gate is stable on loaded CI hosts where
# wall-clock timing is not; --counters-only skips the timed medians.
./build/bench/bench_micro_kernels --json "$smoke_dir/perf.json" \
    --counters-only --budget tools/perf_budget.json
# Scheduler counters of the 10^4-stage generated design (exact structural
# pins; also re-checks levels-vs-deps bitwise equivalence end to end).
# The 1,4 thread sweep additionally checks the work-stealing scheduler's
# bit-identity across lane counts and budgets its steal/lock-wait
# counters (upper bounds: scheduling-dependent, not exact).
./build/bench/bench_scale_sta --smoke --counters-only --threads 1,4 \
    --budget tools/perf_budget.json
echo "perf smoke passed"

echo "== scale smoke (10^5-stage generated design, deps schedule) =="
# Full STA over a 10^5-stage grid through the gate-level frontend: must
# finish inside the wall-clock cap (~7 s on an idle 8-core host) and
# inside a 512 MB peak-RSS ceiling (~190 MB measured) — the guard against
# accidental per-stage memory or quadratic scheduling regressions.
scale_rss_kb=$(python3 - <<'EOF'
import resource, subprocess, sys
p = subprocess.run(["./build/tools/qwm_sim", "gen:grid:100000:seed=7",
                    "--sta", "--threads", "8", "--schedule", "deps"],
                   stdout=subprocess.DEVNULL, timeout=120)
if p.returncode != 0:
    sys.exit(p.returncode)
print(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
EOF
) || { echo "scale smoke: qwm_sim failed or exceeded the 120 s cap"; exit 1; }
[[ "$scale_rss_kb" -le $((512 * 1024)) ]] \
    || { echo "scale smoke: peak RSS ${scale_rss_kb} kB > 512 MB cap"; exit 1; }
echo "scale smoke passed (peak RSS ${scale_rss_kb} kB)"

if [[ "$skip_asan" == 1 ]]; then
  echo "== tier1 + fuzz under ASan/UBSan: SKIPPED (--skip-asan) =="
else
  echo "== configure + build (asan) =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j"$(nproc)"

  echo "== tier1 tests (ASan + UBSan) =="
  ctest --preset asan-tier1

  echo "== differential fuzz sweep (2000 samples, pinned seed, ASan) =="
  # The seed is pinned so the sweep is reproducible; a failing sample
  # writes its reproducer under tests/data/repro/ (see README).
  QWM_FUZZ_SAMPLES=2000 QWM_FUZZ_SEED=20260806 \
    ASAN_OPTIONS="halt_on_error=1 detect_leaks=0" \
    UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ./build-asan/tests/test_fuzz
  echo "fuzz sweep passed"
fi

if [[ "$skip_tsan" == 1 ]]; then
  echo "== tier1 under TSan: SKIPPED (--skip-tsan) =="
  exit 0
fi

echo "== configure + build (tsan) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j"$(nproc)"

echo "== tier1 tests (ThreadSanitizer) =="
ctest --preset tsan-tier1

echo "CI gate passed: tier1 clean, plain and under sanitizers."
