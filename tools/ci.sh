#!/usr/bin/env bash
# Tier-1 CI gate: the labelled test suites, run twice —
#   1. plain (RelWithDebInfo, preset `default`), and
#   2. under ThreadSanitizer (preset `tsan`) to catch data races in the
#      parallel level-synchronous scheduler, the shared memo cache, and
#      the qwm_serve dispatch layer —
# plus a service smoke stage driving the qwm_serve daemon over both
# transports (scripted stdio exchange; TCP round with qwm_load) and a
# deterministic perf-regression smoke comparing the pinned counter
# workload of bench_micro_kernels against tools/perf_budget.json.
# Usage: tools/ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_tsan=0
[[ "${1:-}" == "--skip-tsan" ]] && skip_tsan=1

echo "== configure + build (default) =="
cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)"

echo "== tier1 tests (plain) =="
ctest --preset tier1

echo "== service smoke (stdio) =="
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cat > "$smoke_dir/chain.sp" <<'DECK'
ci smoke chain
vdd vdd 0 3.3
vin in 0 0
mn0 s1 in 0 0 nmos W=1.5u L=0.35u
mp0 s1 in vdd vdd pmos W=3u L=0.35u
mn1 out s1 0 0 nmos W=1.5u L=0.35u
mp1 out s1 vdd vdd pmos W=3u L=0.35u
cl out 0 20f
.end
DECK
stdio_out=$(printf 'LOAD %s\nARRIVAL out\nRESIZE 0 0 2.5u\nUPDATE\nSTATS\nSHUTDOWN\n' \
    "$smoke_dir/chain.sp" | ./build/tools/qwm_serve --stdio 2>/dev/null)
echo "$stdio_out"
# Six requests -> six responses, all OK, ending with the shutdown ack.
[[ $(echo "$stdio_out" | wc -l) -eq 6 ]] || { echo "stdio smoke: expected 6 responses"; exit 1; }
[[ -z $(echo "$stdio_out" | grep -v '^OK') ]] || { echo "stdio smoke: non-OK response"; exit 1; }
[[ $(echo "$stdio_out" | tail -1) == "OK bye" ]] || { echo "stdio smoke: missing shutdown ack"; exit 1; }

echo "== service smoke (TCP: qwm_serve + qwm_load) =="
./build/tools/qwm_serve --port 0 --port-file "$smoke_dir/port" --threads 4 \
    2> "$smoke_dir/serve.log" &
serve_pid=$!
for _ in $(seq 50); do [[ -s "$smoke_dir/port" ]] && break; sleep 0.1; done
[[ -s "$smoke_dir/port" ]] || { echo "qwm_serve did not write its port"; kill "$serve_pid"; exit 1; }
./build/tools/qwm_load --port "$(cat "$smoke_dir/port")" \
    --deck "$smoke_dir/chain.sp" --clients 8 --requests 50 \
    --what-if 3 --verify --shutdown
wait "$serve_pid" || { echo "qwm_serve exited non-zero"; exit 1; }
grep -q "clean shutdown" "$smoke_dir/serve.log" || { echo "qwm_serve: no clean shutdown"; exit 1; }
echo "service smoke passed"

echo "== perf smoke (work-counter budget) =="
# Counters (Newton iterations, device evaluations, workspace growth) are
# machine-deterministic, so this gate is stable on loaded CI hosts where
# wall-clock timing is not; --counters-only skips the timed medians.
./build/bench/bench_micro_kernels --json "$smoke_dir/perf.json" \
    --counters-only --budget tools/perf_budget.json
echo "perf smoke passed"

if [[ "$skip_tsan" == 1 ]]; then
  echo "== tier1 under TSan: SKIPPED (--skip-tsan) =="
  exit 0
fi

echo "== configure + build (tsan) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j"$(nproc)"

echo "== tier1 tests (ThreadSanitizer) =="
ctest --preset tsan-tier1

echo "CI gate passed: tier1 clean, plain and under TSan."
